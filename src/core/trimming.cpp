#include "core/trimming.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/math_utils.hpp"
#include "common/require.hpp"

namespace pdac::core {

namespace {

/// Codes whose comparator selection lands in `seg`, excluding codes whose
/// nominal phase sits within `guard` of the [0, π] boundary (there the
/// arccos inversion of a drifted phase can wrap and corrupt the fit).
std::vector<std::int32_t> segment_codes(const SegmentedTiaProgram& prog, Segment seg,
                                        double guard) {
  std::vector<std::int32_t> codes;
  const auto max_code = static_cast<std::int32_t>((1 << (prog.bits() - 1)) - 1);
  for (std::int32_t c = -max_code; c <= max_code; ++c) {
    if (prog.select(c) != seg) continue;
    const double nominal_phase = prog.drive_phase(c);
    if (nominal_phase < guard || nominal_phase > math::kPi - guard) continue;
    codes.push_back(c);
  }
  return codes;
}

/// Evenly thin a code list down to `want` probes (keep all if fewer).
std::vector<std::int32_t> choose_probes(const std::vector<std::int32_t>& codes,
                                        std::size_t want) {
  if (codes.size() <= want) return codes;
  std::vector<std::int32_t> out;
  out.reserve(want);
  for (std::size_t i = 0; i < want; ++i) {
    const std::size_t idx = i * (codes.size() - 1) / (want - 1);
    out.push_back(codes[idx]);
  }
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

struct SegmentFit {
  std::vector<double> delta_weights;  ///< per bit (0 where unobservable)
  double delta_bias{};
  int probes{};
};

/// Fit the effective linear map of one bank from probe measurements and
/// return the correction that restores the nominal map.
SegmentFit fit_segment(const PerturbedPdacModel& device, Segment seg, std::size_t want) {
  const auto& prog = device.nominal_program();
  const int bits = device.bits();
  const auto codes = choose_probes(segment_codes(prog, seg, /*guard=*/0.08), want);
  SegmentFit fit;
  fit.delta_weights.assign(static_cast<std::size_t>(bits), 0.0);
  if (codes.size() < 2) return fit;  // nothing identifiable

  // Which bits actually vary across the probe set?  Constant bits are
  // indistinguishable from the bias and are folded into it.
  const auto mask_of = [bits](std::int32_t c) {
    return static_cast<std::uint32_t>(c) & ((1u << bits) - 1u);
  };
  std::uint32_t all_and = ~0u, all_or = 0u;
  for (auto c : codes) {
    all_and &= mask_of(c);
    all_or |= mask_of(c);
  }
  std::vector<int> varying;
  for (int i = 0; i < bits; ++i) {
    const std::uint32_t bit = 1u << i;
    if ((all_or & bit) != 0u && (all_and & bit) == 0u) varying.push_back(i);
  }
  const std::size_t unknowns = varying.size() + 1;
  if (codes.size() < unknowns) return fit;

  // Design matrix rows: [bit_{v0}, bit_{v1}, …, 1]; targets: measured and
  // nominal phases.  Fitting the nominal phases with the same design
  // keeps constant-bit contributions consistently inside the offset.
  std::vector<std::vector<double>> a;
  std::vector<double> measured, nominal;
  a.reserve(codes.size());
  for (auto c : codes) {
    std::vector<double> row(unknowns, 0.0);
    const std::uint32_t pattern = mask_of(c);
    for (std::size_t v = 0; v < varying.size(); ++v) {
      row[v] = ((pattern >> varying[v]) & 1u) != 0u ? 1.0 : 0.0;
    }
    row.back() = 1.0;
    a.push_back(std::move(row));
    measured.push_back(std::acos(math::clamp_unit(device.encode_code(c))));
    nominal.push_back(prog.drive_phase(c));
  }
  std::vector<double> est, ref;
  try {
    est = math::solve_least_squares(a, measured);
    ref = math::solve_least_squares(a, nominal);
  } catch (const PreconditionError&) {
    // Evenly strided probes can leave two bit columns collinear (their
    // patterns repeat with the same period).  Densify to every usable
    // code in the segment, which breaks the degeneracy whenever the
    // segment exercises those bits independently at all.
    const auto all = segment_codes(prog, seg, /*guard=*/0.08);
    if (all.size() <= codes.size()) return fit;
    return fit_segment(device, seg, all.size());
  }

  for (std::size_t v = 0; v < varying.size(); ++v) {
    fit.delta_weights[static_cast<std::size_t>(varying[v])] = ref[v] - est[v];
  }
  fit.delta_bias = ref.back() - est.back();
  fit.probes = static_cast<int>(codes.size());
  return fit;
}

}  // namespace

TrimResult trim_pdac(PerturbedPdacModel& device, const TrimmingConfig& cfg) {
  const std::size_t want =
      cfg.probes_per_bank > 0 ? static_cast<std::size_t>(cfg.probes_per_bank)
                              : 2 * (static_cast<std::size_t>(device.bits()) + 1);
  TrimResult result;
  result.worst_error_before = device.worst_error();
  result.mean_abs_error_before = device.mean_abs_error();
  constexpr Segment kSegments[] = {Segment::kNegativeOuter, Segment::kMiddle,
                                   Segment::kPositiveOuter};
  std::vector<SegmentFit> fits;
  for (Segment seg : kSegments) {
    SegmentFit fit = fit_segment(device, seg, want);
    device.apply_correction(seg, fit.delta_weights, fit.delta_bias);
    result.probes_used += fit.probes;
    fits.push_back(std::move(fit));
  }
  result.worst_error_after = device.worst_error();
  result.mean_abs_error_after = device.mean_abs_error();
  // A trim must never make the device worse; when it does, the probe
  // observable was not the linear-in-bits map the fit assumes (stuck or
  // dead hardware) and the corrections are garbage.  The tolerance keeps
  // a nominal device — where before == after up to rounding — a fixed
  // point rather than a spurious failure.
  result.fit_failed = result.worst_error_after > result.worst_error_before + 1e-9;
  if (result.fit_failed && cfg.revert_on_failure) {
    for (std::size_t s = 0; s < fits.size(); ++s) {
      auto undo = fits[s].delta_weights;
      for (auto& w : undo) w = -w;
      device.apply_correction(kSegments[s], undo, -fits[s].delta_bias);
    }
    result.worst_error_after = device.worst_error();
    result.mean_abs_error_after = device.mean_abs_error();
  }
  return result;
}

}  // namespace pdac::core
