#include "core/error_model.hpp"

#include <cmath>

#include "common/math_utils.hpp"
#include "common/require.hpp"

namespace pdac::core {

EncodeErrorReport sweep_encode_error(const ModulatorDriver& driver, std::size_t n,
                                     double rel_floor) {
  PDAC_REQUIRE(n >= 3, "sweep_encode_error: at least three samples");
  EncodeErrorReport rep;
  for (double r : math::linspace(-1.0, 1.0, n)) {
    const double v = driver.encode(r);
    const double abs_err = std::abs(v - r);
    const double rel_err = math::relative_error(v, r, rel_floor);
    rep.abs_error.add(abs_err);
    rep.rel_error.add(rel_err);
    if (abs_err > rep.worst_abs) rep.worst_abs = abs_err;
    if (rel_err > rep.worst_rel) {
      rep.worst_rel = rel_err;
      rep.worst_rel_at = r;
    }
  }
  return rep;
}

double expected_abs_error(const PiecewiseLinearArccos& approx,
                          const std::function<double(double)>& pdf) {
  auto integrand = [&](double r) { return std::abs(approx.decoded(r) - r) * pdf(r); };
  const double num = math::integrate(integrand, -1.0, 1.0, 1e-10);
  const double mass = math::integrate(pdf, -1.0, 1.0, 1e-10);
  PDAC_REQUIRE(mass > 0.0, "expected_abs_error: density has zero mass on [-1, 1]");
  return num / mass;
}

double uniform_pdf(double r) { return (r >= -1.0 && r <= 1.0) ? 0.5 : 0.0; }

std::function<double(double)> gaussian_pdf(double stddev) {
  PDAC_REQUIRE(stddev > 0.0, "gaussian_pdf: stddev must be positive");
  const double inv = 1.0 / (stddev * std::sqrt(2.0 * math::kPi));
  return [inv, stddev](double r) {
    if (r < -1.0 || r > 1.0) return 0.0;
    return inv * std::exp(-0.5 * r * r / (stddev * stddev));
  };
}

}  // namespace pdac::core
