#include "core/arccos_approx.hpp"

#include <cmath>

#include "common/math_utils.hpp"
#include "common/require.hpp"

namespace pdac::core {

double arccos_taylor1(double r) { return math::kPi / 2.0 - r; }

double arccos_taylor(double r, int terms) {
  PDAC_REQUIRE(terms >= 1, "arccos_taylor: at least one term");
  // arccos(r) = π/2 − Σ_{n≥0} (2n)! / (4^n (n!)² (2n+1)) · r^{2n+1}
  double sum = 0.0;
  double coeff = 1.0;  // (2n)!/(4^n (n!)^2) for n = 0
  double r_pow = r;    // r^{2n+1}
  for (int n = 0; n < terms; ++n) {
    sum += coeff * r_pow / static_cast<double>(2 * n + 1);
    // Update the central-binomial ratio: c_{n+1} = c_n · (2n+1)/(2n+2).
    coeff *= static_cast<double>(2 * n + 1) / static_cast<double>(2 * n + 2);
    r_pow *= r * r;
  }
  return math::kPi / 2.0 - sum;
}

PiecewiseLinearArccos::PiecewiseLinearArccos(double k) : k_(k) {
  PDAC_REQUIRE(k > 0.0 && k < 1.0, "PiecewiseLinearArccos: breakpoint in (0, 1)");
  const double half_pi = math::kPi / 2.0;

  // Middle segment: first-order Taylor (Eq. 15), valid on [−k, k].
  middle_ = LinearPiece{-k, k, -1.0, half_pi};

  // Positive outer segment (Eq. 16): the line through (k, π/2 − k) — the
  // Taylor value at the breakpoint — and (1, arccos(1)) = (1, 0):
  //   f(r) = (k − π/2)/(k − 1) · (1 − r)
  const double slope_mag = (k - half_pi) / (k - 1.0);  // ≈ 3.0651 at k = 0.7236
  positive_ = LinearPiece{k, 1.0, -slope_mag, slope_mag};

  // Negative outer segment via arccos symmetry f(−r) = π − f(r):
  //   f(r) = π − slope_mag·(1 + r) = −slope_mag·r + (π − slope_mag)
  negative_ = LinearPiece{-1.0, -k, -slope_mag, math::kPi - slope_mag};
}

PiecewiseLinearArccos PiecewiseLinearArccos::with_breakpoint(double k) {
  return PiecewiseLinearArccos(k);
}

PiecewiseLinearArccos PiecewiseLinearArccos::paper() { return PiecewiseLinearArccos(0.7236); }

Segment PiecewiseLinearArccos::segment(double r) const {
  if (r < -k_) return Segment::kNegativeOuter;
  if (r > k_) return Segment::kPositiveOuter;
  return Segment::kMiddle;
}

const LinearPiece& PiecewiseLinearArccos::piece(Segment s) const {
  switch (s) {
    case Segment::kNegativeOuter: return negative_;
    case Segment::kPositiveOuter: return positive_;
    case Segment::kMiddle: break;
  }
  return middle_;
}

double PiecewiseLinearArccos::eval(double r) const {
  r = math::clamp_unit(r);
  return piece(segment(r)).eval(r);
}

double PiecewiseLinearArccos::decoded(double r) const { return std::cos(eval(r)); }

double PiecewiseLinearArccos::decode_error(double r, double floor) const {
  return math::relative_error(decoded(r), math::clamp_unit(r), floor);
}

double PiecewiseLinearArccos::integrated_error() const {
  // Paper Eq. 17: ∫₀ᵏ |(cos(π/2 − r) − r)/r| dr + ∫ₖ¹ |(cos(f(r)) − r)/r| dr.
  // The integrand is bounded at r→0 because cos(π/2 − r) = sin(r) ~ r.
  auto integrand = [this](double r) {
    if (r < 1e-12) return 0.0;
    return std::abs((decoded(r) - r) / r);
  };
  return math::integrate(integrand, 0.0, k_) + math::integrate(integrand, k_, 1.0);
}

double PiecewiseLinearArccos::max_decode_error(double lo) const {
  auto err = [this](double r) { return decode_error(r); };
  // The function is symmetric; scan the positive half only.
  return math::dense_maximize(err, lo, 1.0).value;
}

std::string to_string(Segment s) {
  switch (s) {
    case Segment::kNegativeOuter: return "negative-outer";
    case Segment::kMiddle: return "middle";
    case Segment::kPositiveOuter: return "positive-outer";
  }
  return "?";
}

}  // namespace pdac::core
