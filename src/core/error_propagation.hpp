// error_propagation.hpp — analytic model of how P-DAC encode errors
// propagate through dot products.
//
// The paper argues empirically that the ≤8.5 % worst-case encode error
// is harmless for LLMs.  This module gives the mechanism.  An encoder's
// transfer decomposes against an operand distribution into
//     enc(r) = g·r + e(r),   E[r·e] = 0
// a *systematic gain* g (the middle Taylor segment encodes sin(r) ≈
// (1 − E[r²]/6)·r, a pure shrink) plus a zero-correlation residual of
// variance σ².  For a length-K dot product of independently encoded
// operands,
//     y′ ≈ g_x·g_w·y + noise,
//     Var(noise) = K·(g_x²·E[x²]·σ_w² + g_w²·E[w²]·σ_x² + σ_x²·σ_w²)
// so the *relative* RMS deviation from the gain-corrected value is
// independent of K — long reductions do not accumulate relative error,
// and the gain itself is a benign per-tensor rescale that max-abs
// calibration absorbs.  A Monte-Carlo validator pins the prediction.
#pragma once

#include <cstddef>
#include <functional>

#include "core/modulator_driver.hpp"

namespace pdac::core {

/// Gain + residual decomposition of an encoder against a distribution.
struct EncodeDecomposition {
  double gain{};          ///< least-squares linear gain g
  double residual_var{};  ///< Var[enc(r) − g·r]
  double operand_var{};   ///< E[r²] under the distribution
};

/// Decompose `driver` against density `pdf` on [−1, 1] (numerical
/// quadrature over a grid of `samples` points).
EncodeDecomposition decompose_encoder(const ModulatorDriver& driver,
                                      const std::function<double(double)>& pdf,
                                      std::size_t samples = 4001);

struct DotErrorPrediction {
  double combined_gain{};  ///< g_x·g_w — systematic output scale
  double noise_rms{};      ///< RMS of the residual noise on the output
  double rel_noise_rms{};  ///< noise_rms / RMS(exact dot product)
};

/// Closed-form prediction for a length-K dot product with operands drawn
/// from the decomposed distributions.
DotErrorPrediction predict_dot_error(const EncodeDecomposition& x,
                                     const EncodeDecomposition& w, std::size_t k);

/// Monte-Carlo measurement of the same quantities (validation): draws
/// uniform(−1,1)-scaled operands from `pdf` via rejection and runs the
/// real encoder.  Returns measured gain and relative noise RMS.
DotErrorPrediction measure_dot_error(const ModulatorDriver& driver,
                                     const std::function<double(double)>& pdf,
                                     std::size_t k, int trials, std::uint64_t seed);

}  // namespace pdac::core
