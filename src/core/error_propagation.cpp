#include "core/error_propagation.hpp"

#include <cmath>

#include "common/math_utils.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace pdac::core {

EncodeDecomposition decompose_encoder(const ModulatorDriver& driver,
                                      const std::function<double(double)>& pdf,
                                      std::size_t samples) {
  PDAC_REQUIRE(samples >= 3, "decompose_encoder: at least three samples");
  double mass = 0.0, num = 0.0, den = 0.0;
  const auto grid = math::linspace(-1.0, 1.0, samples);
  std::vector<double> enc(grid.size());
  std::vector<double> weight(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    enc[i] = driver.encode(grid[i]);
    weight[i] = pdf(grid[i]);
    mass += weight[i];
    num += weight[i] * grid[i] * enc[i];
    den += weight[i] * grid[i] * grid[i];
  }
  PDAC_REQUIRE(mass > 0.0, "decompose_encoder: density has zero mass");
  PDAC_REQUIRE(den > 0.0, "decompose_encoder: degenerate operand distribution");

  EncodeDecomposition d;
  d.gain = num / den;
  d.operand_var = den / mass;
  double rvar = 0.0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const double e = enc[i] - d.gain * grid[i];
    rvar += weight[i] * e * e;
  }
  d.residual_var = rvar / mass;
  return d;
}

DotErrorPrediction predict_dot_error(const EncodeDecomposition& x,
                                     const EncodeDecomposition& w, std::size_t k) {
  PDAC_REQUIRE(k >= 1, "predict_dot_error: at least one element");
  DotErrorPrediction p;
  p.combined_gain = x.gain * w.gain;
  const double kd = static_cast<double>(k);
  const double noise_var =
      kd * (x.gain * x.gain * x.operand_var * w.residual_var +
            w.gain * w.gain * w.operand_var * x.residual_var +
            x.residual_var * w.residual_var);
  p.noise_rms = std::sqrt(noise_var);
  const double signal_rms = std::sqrt(kd * x.operand_var * w.operand_var);
  p.rel_noise_rms = signal_rms > 0.0 ? p.noise_rms / signal_rms : 0.0;
  return p;
}

DotErrorPrediction measure_dot_error(const ModulatorDriver& driver,
                                     const std::function<double(double)>& pdf,
                                     std::size_t k, int trials, std::uint64_t seed) {
  PDAC_REQUIRE(k >= 1 && trials >= 10, "measure_dot_error: k >= 1, trials >= 10");
  Rng rng(seed);
  // Rejection sampler over [−1, 1] with envelope max(pdf) from a scan.
  double pdf_max = 0.0;
  for (double r : math::linspace(-1.0, 1.0, 512)) pdf_max = std::max(pdf_max, pdf(r));
  PDAC_REQUIRE(pdf_max > 0.0, "measure_dot_error: density has zero mass");
  auto draw = [&]() {
    for (;;) {
      const double r = rng.uniform(-1.0, 1.0);
      if (rng.uniform(0.0, pdf_max) <= pdf(r)) return r;
    }
  };

  stats::Running exact_sq, cross, noise_sq;
  std::vector<double> xs(k), ws(k);
  double gain_num = 0.0, gain_den = 0.0;
  std::vector<double> exact_vals, encoded_vals;
  exact_vals.reserve(static_cast<std::size_t>(trials));
  encoded_vals.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    double y = 0.0, y_enc = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      xs[i] = draw();
      ws[i] = draw();
      y += xs[i] * ws[i];
      y_enc += driver.encode(xs[i]) * driver.encode(ws[i]);
    }
    exact_vals.push_back(y);
    encoded_vals.push_back(y_enc);
    gain_num += y * y_enc;
    gain_den += y * y;
  }

  DotErrorPrediction p;
  p.combined_gain = gain_den > 0.0 ? gain_num / gain_den : 1.0;
  double nvar = 0.0, svar = 0.0;
  for (std::size_t i = 0; i < exact_vals.size(); ++i) {
    const double n = encoded_vals[i] - p.combined_gain * exact_vals[i];
    nvar += n * n;
    svar += exact_vals[i] * exact_vals[i];
  }
  p.noise_rms = std::sqrt(nvar / static_cast<double>(exact_vals.size()));
  const double signal_rms = std::sqrt(svar / static_cast<double>(exact_vals.size()));
  p.rel_noise_rms = signal_rms > 0.0 ? p.noise_rms / signal_rms : 0.0;
  return p;
}

}  // namespace pdac::core
