// pdac.hpp — the Photonic Digital-to-Analog Converter (paper §III,
// Fig. 7): the contribution this repository reproduces.
//
// Datapath per modulator channel:
//
//   optical digital word (b bit-slots, from the EO interface over WDM)
//     → per-bit photodetectors
//     → one of three TIA weight banks (selected by "leq" comparators on
//       the code magnitude, implementing the 3-segment Eq. 18 program)
//     → summed voltage  V′₁ = f(r)  drives the integrated MZM push–pull
//     → E_out = E_in·cos(V′₁) ≈ r·E_in
//
// compared to the traditional chain it replaces:
//   controller computes arccos(r) → electrical DAC synthesizes V₁ → MZM.
//
// Power model (per modulator channel, calibrated in DESIGN.md §5):
//   P = a·b + c·(2^b − 1) + P_mzm_bias
// where a covers the per-bit PD + receive ring, and c the binary-weighted
// TIA whose bias current scales with its gain (Σ_i 2^i = 2^b − 1).  Only
// the selected bank draws gain current, so the three banks do not triple
// the cost.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "converters/eo_interface.hpp"
#include "converters/quantizer.hpp"
#include "core/arccos_approx.hpp"
#include "core/tia_weights.hpp"
#include "photonics/mzm.hpp"

namespace pdac::core {

/// Bit encoding of the optical digital words driving the P-DAC.
enum class BitEncoding {
  kTwosComplement,  ///< the default; MSB carries weight −2^{b−1}
  kSignMagnitude,   ///< sign bit selects a mirrored bank (variation-robust)
};

struct PdacConfig {
  int bits{8};
  double breakpoint{0.7236};  ///< Eq. 18 segment breakpoint
  BitEncoding encoding{BitEncoding::kTwosComplement};
  photonics::MzmConfig mzm{};
  double eo_on_amplitude{1.0};  ///< logic-1 amplitude of incoming words
  // Per-modulator power constants (defaults match the LT-B calibration).
  units::Power pd_ring_power_per_bit{units::microwatts(160.5).watts()};
  units::Power tia_gain_power_unit{units::microwatts(5.2).watts()};
  units::Power mzm_bias_power{units::watts(0.0)};
};

class Pdac {
 public:
  explicit Pdac(PdacConfig cfg);

  // --- optical digital front end -----------------------------------------
  /// Drive phase produced for an incoming optical digital word: the
  /// comparators select a bank, the weighted TIAs sum the bit currents.
  [[nodiscard]] double drive_phase(const converters::OpticalDigitalWord& word) const;
  /// Same, starting from the electrical code (bypasses the EO link).
  [[nodiscard]] double drive_phase(std::int32_t code) const;

  // --- end-to-end conversion ----------------------------------------------
  /// Desired analog value r ∈ [−1, 1] → quantize → word → phase → MZM:
  /// returns the modulated field for the given carrier.
  [[nodiscard]] photonics::Complex convert(double r, photonics::Complex carrier) const;
  /// E_out/E_in for a unit carrier — the value the optics encode.  The
  /// real part carries the signal (phase 0 or π encodes the sign).
  [[nodiscard]] double convert_value(double r) const;
  /// Conversion of an exact code, skipping quantization.
  [[nodiscard]] double convert_code(std::int32_t code) const;

  /// Worst-case |convert_value(r) − r|/|r| over the code range — device-
  /// level validation of the paper's 8.5 % bound (plus quantization).
  [[nodiscard]] double worst_case_error() const;

  // --- power ----------------------------------------------------------------
  [[nodiscard]] units::Power power() const;
  static units::Power power_model(int bits, units::Power pd_ring_per_bit,
                                  units::Power tia_gain_unit, units::Power mzm_bias);

  [[nodiscard]] const PdacConfig& config() const { return cfg_; }
  [[nodiscard]] const SegmentedTiaProgram& program() const { return program_; }
  [[nodiscard]] const PiecewiseLinearArccos& approximation() const { return approx_; }
  [[nodiscard]] const converters::Quantizer& quantizer() const { return quant_; }

 private:
  PdacConfig cfg_;
  PiecewiseLinearArccos approx_;
  SegmentedTiaProgram program_;            ///< two's-complement banks
  SignMagnitudeTiaProgram sm_program_;     ///< sign-magnitude banks
  converters::Quantizer quant_;
  photonics::Mzm mzm_;
};

}  // namespace pdac::core
