#include "core/pdac.hpp"

#include <cmath>

#include "common/math_utils.hpp"
#include "common/require.hpp"

namespace pdac::core {

Pdac::Pdac(PdacConfig cfg)
    : cfg_(cfg),
      approx_(PiecewiseLinearArccos::with_breakpoint(cfg.breakpoint)),
      program_(approx_, cfg.bits),
      sm_program_(approx_, cfg.bits),
      quant_(cfg.bits),
      mzm_(cfg.mzm) {
  PDAC_REQUIRE(cfg_.eo_on_amplitude > 0.0, "Pdac: on amplitude must be positive");
}

double Pdac::drive_phase(const converters::OpticalDigitalWord& word) const {
  PDAC_REQUIRE(word.bits() == static_cast<std::size_t>(cfg_.bits),
               "Pdac: word width mismatch");
  // Per-bit photodetection with threshold regeneration, then the
  // comparator logic selects a bank from the recovered code.
  const double threshold = 0.25 * 0.5 * cfg_.eo_on_amplitude * cfg_.eo_on_amplitude;
  std::uint32_t pattern = 0;
  for (std::size_t i = 0; i < word.bits(); ++i) {
    if (word.bit(i, threshold)) pattern |= (1u << i);
  }
  const std::uint32_t sign_bit = 1u << (cfg_.bits - 1);
  std::int32_t code;
  if ((pattern & sign_bit) != 0u) {
    code = static_cast<std::int32_t>(pattern | ~((sign_bit << 1) - 1u));
  } else {
    code = static_cast<std::int32_t>(pattern);
  }
  return drive_phase(code);
}

double Pdac::drive_phase(std::int32_t code) const {
  // Both programs realize the identical nominal f(r); the encoding only
  // changes which physical bank topology computes it (and its variation
  // robustness — see the A6 bench).
  return cfg_.encoding == BitEncoding::kSignMagnitude ? sm_program_.drive_phase(code)
                                                      : program_.drive_phase(code);
}

photonics::Complex Pdac::convert(double r, photonics::Complex carrier) const {
  const std::int32_t code = quant_.encode(r);
  return mzm_.modulate_pushpull(carrier, drive_phase(code));
}

double Pdac::convert_value(double r) const {
  const photonics::Complex out = convert(r, photonics::Complex{1.0, 0.0});
  return out.real();
}

double Pdac::convert_code(std::int32_t code) const {
  const photonics::Complex out =
      mzm_.modulate_pushpull(photonics::Complex{1.0, 0.0}, drive_phase(code));
  return out.real();
}

double Pdac::worst_case_error() const {
  double worst = 0.0;
  for (std::int32_t c = -quant_.max_code(); c <= quant_.max_code(); ++c) {
    if (c == 0) continue;
    const double r = quant_.decode(c);
    worst = std::max(worst, math::relative_error(convert_code(c), r));
  }
  return worst;
}

units::Power Pdac::power() const {
  return power_model(cfg_.bits, cfg_.pd_ring_power_per_bit, cfg_.tia_gain_power_unit,
                     cfg_.mzm_bias_power);
}

units::Power Pdac::power_model(int bits, units::Power pd_ring_per_bit,
                               units::Power tia_gain_unit, units::Power mzm_bias) {
  PDAC_REQUIRE(bits >= 1 && bits <= 24, "Pdac: bits in [1, 24]");
  const double gain_units = std::exp2(bits) - 1.0;  // Σ_i 2^i over the active bank
  return units::watts(pd_ring_per_bit.watts() * static_cast<double>(bits) +
                      tia_gain_unit.watts() * gain_units + mzm_bias.watts());
}

}  // namespace pdac::core
