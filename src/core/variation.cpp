#include "core/variation.hpp"

#include <algorithm>
#include <cmath>

#include "common/math_utils.hpp"
#include "common/require.hpp"

namespace pdac::core {

PerturbedPdacModel::PerturbedPdacModel(const PdacConfig& cfg, const VariationConfig& var,
                                       Rng& rng)
    : nominal_program_(PiecewiseLinearArccos::with_breakpoint(cfg.breakpoint), cfg.bits),
      mzm_([&] {
        photonics::MzmConfig m = cfg.mzm;
        if (var.mzm_imbalance_sigma > 0.0) {
          // Resample until inside the physical (−1, 1) range.
          double k;
          do {
            k = m.imbalance_k + rng.gaussian(0.0, var.mzm_imbalance_sigma);
          } while (k <= -0.99 || k >= 0.99);
          m.imbalance_k = k;
        }
        return photonics::Mzm(m);
      }()),
      bits_(cfg.bits),
      quant_(cfg.bits) {
  const Segment order[3] = {Segment::kNegativeOuter, Segment::kMiddle,
                            Segment::kPositiveOuter};
  for (int i = 0; i < 3; ++i) {
    banks_[i] = nominal_program_.bank(order[i]);
    for (auto& w : banks_[i].weights) {
      w *= 1.0 + rng.gaussian(0.0, var.tia_gain_sigma);
    }
    banks_[i].bias += rng.gaussian(0.0, var.bias_sigma);
  }
  phase_scale_ = 1.0 + rng.gaussian(0.0, var.vpi_drift_sigma);
}

const TiaWeightBank& PerturbedPdacModel::bank(Segment seg) const {
  switch (seg) {
    case Segment::kNegativeOuter: return banks_[0];
    case Segment::kMiddle: return banks_[1];
    case Segment::kPositiveOuter: break;
  }
  return banks_[2];
}

TiaWeightBank& PerturbedPdacModel::bank_mutable(Segment seg) {
  switch (seg) {
    case Segment::kNegativeOuter: return banks_[0];
    case Segment::kMiddle: return banks_[1];
    case Segment::kPositiveOuter: break;
  }
  return banks_[2];
}

double PerturbedPdacModel::encode_code(std::int32_t code) const {
  // A stuck MRR modulator ignores the drive entirely: the lane emits the
  // pinned amplitude whatever the code (fault_hook.hpp).
  if (fault_hook_.stuck_output.has_value()) return *fault_hook_.stuck_output;
  const TiaWeightBank& b = bank(nominal_program_.select(code));
  const auto pattern = static_cast<std::uint32_t>(code) & ((1u << bits_) - 1u);
  // The bias is the reference voltage, not PD-derived, so PD faults touch
  // only the per-bit terms.  A healthy hook multiplies by exactly 1.0, so
  // this is bit-identical to the hook-free evaluation.
  double phase = b.bias;
  for (int i = 0; i < bits_; ++i) {
    const std::uint32_t bit = 1u << i;
    if ((pattern & bit) == 0u || (fault_hook_.dead_pd_bits & bit) != 0u) continue;
    phase += fault_hook_.pd_responsivity_scale * b.weights[static_cast<std::size_t>(i)];
  }
  return fault_hook_.carrier_scale *
         mzm_.modulate_pushpull(photonics::Complex{1.0, 0.0}, phase * phase_scale_).real();
}

double PerturbedPdacModel::worst_error() const {
  double worst = 0.0;
  for (std::int32_t c = -quant_.max_code(); c <= quant_.max_code(); ++c) {
    if (c == 0) continue;
    // Same 5 %-of-full-scale floor as sweep_encode_error: an additive
    // bias drift would otherwise register as unbounded *relative* error
    // on near-zero codes and mask the mid-range behaviour.
    worst = std::max(worst,
                     math::relative_error(encode_code(c), quant_.decode(c), 5e-2));
  }
  return worst;
}

double PerturbedPdacModel::mean_abs_error() const {
  stats::Running abs_err;
  for (std::int32_t c = -quant_.max_code(); c <= quant_.max_code(); ++c) {
    abs_err.add(std::abs(encode_code(c) - quant_.decode(c)));
  }
  return abs_err.mean();
}

void PerturbedPdacModel::apply_correction(Segment seg,
                                          const std::vector<double>& delta_weights,
                                          double delta_bias) {
  TiaWeightBank& b = bank_mutable(seg);
  PDAC_REQUIRE(delta_weights.size() == b.weights.size(),
               "apply_correction: weight count mismatch");
  for (std::size_t i = 0; i < b.weights.size(); ++i) b.weights[i] += delta_weights[i];
  b.bias += delta_bias;
}

double VariationReport::yield(double error_budget) const {
  if (samples.empty()) return 0.0;
  std::size_t ok = 0;
  for (const auto& s : samples) {
    if (s.worst_error <= error_budget) ++ok;
  }
  return static_cast<double>(ok) / static_cast<double>(samples.size());
}

double VariationReport::worst_error_quantile(double q) const {
  PDAC_REQUIRE(q >= 0.0 && q <= 1.0, "worst_error_quantile: q in [0, 1]");
  PDAC_REQUIRE(!samples.empty(), "worst_error_quantile: no samples");
  std::vector<double> xs;
  xs.reserve(samples.size());
  for (const auto& s : samples) xs.push_back(s.worst_error);
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[std::min(idx, xs.size() - 1)];
}

PerturbedSignMagnitudeModel::PerturbedSignMagnitudeModel(const PdacConfig& cfg,
                                                         const VariationConfig& var,
                                                         Rng& rng)
    : program_(PiecewiseLinearArccos::with_breakpoint(cfg.breakpoint), cfg.bits),
      mzm_([&] {
        photonics::MzmConfig m = cfg.mzm;
        if (var.mzm_imbalance_sigma > 0.0) {
          double k;
          do {
            k = m.imbalance_k + rng.gaussian(0.0, var.mzm_imbalance_sigma);
          } while (k <= -0.99 || k >= 0.99);
          m.imbalance_k = k;
        }
        return photonics::Mzm(m);
      }()),
      bits_(cfg.bits),
      quant_(cfg.bits) {
  for (int outer = 0; outer < 2; ++outer) {
    for (int negative = 0; negative < 2; ++negative) {
      auto& bank = program_.bank_mutable(outer != 0, negative != 0);
      for (auto& w : bank.weights) w *= 1.0 + rng.gaussian(0.0, var.tia_gain_sigma);
      bank.bias += rng.gaussian(0.0, var.bias_sigma);
    }
  }
  phase_scale_ = 1.0 + rng.gaussian(0.0, var.vpi_drift_sigma);
}

double PerturbedSignMagnitudeModel::encode_code(std::int32_t code) const {
  return mzm_
      .modulate_pushpull(photonics::Complex{1.0, 0.0},
                         program_.drive_phase(code) * phase_scale_)
      .real();
}

double PerturbedSignMagnitudeModel::worst_error() const {
  double worst = 0.0;
  for (std::int32_t c = -quant_.max_code(); c <= quant_.max_code(); ++c) {
    if (c == 0) continue;
    worst = std::max(worst,
                     math::relative_error(encode_code(c), quant_.decode(c), 5e-2));
  }
  return worst;
}

double PerturbedSignMagnitudeModel::mean_abs_error() const {
  stats::Running abs_err;
  for (std::int32_t c = -quant_.max_code(); c <= quant_.max_code(); ++c) {
    abs_err.add(std::abs(encode_code(c) - quant_.decode(c)));
  }
  return abs_err.mean();
}

VariationReport monte_carlo_sign_magnitude(const PdacConfig& nominal,
                                           const VariationConfig& var, int trials) {
  PDAC_REQUIRE(trials >= 1, "monte_carlo_sign_magnitude: at least one trial");
  Rng rng(var.seed);
  VariationReport rep;
  rep.samples.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    const PerturbedSignMagnitudeModel device(nominal, var, rng);
    VariationSample s{device.worst_error(), device.mean_abs_error()};
    rep.worst_error.add(s.worst_error);
    rep.mean_abs_error.add(s.mean_abs_error);
    rep.samples.push_back(s);
  }
  return rep;
}

VariationReport monte_carlo_pdac(const PdacConfig& nominal, const VariationConfig& var,
                                 int trials) {
  PDAC_REQUIRE(trials >= 1, "monte_carlo_pdac: at least one trial");
  Rng rng(var.seed);

  VariationReport rep;
  rep.samples.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    const PerturbedPdacModel device(nominal, var, rng);
    VariationSample s;
    s.worst_error = device.worst_error();
    s.mean_abs_error = device.mean_abs_error();
    rep.worst_error.add(s.worst_error);
    rep.mean_abs_error.add(s.mean_abs_error);
    rep.samples.push_back(s);
  }
  return rep;
}

}  // namespace pdac::core
