// oe_interface.hpp — multi-bit optical→electrical interface with
// per-bit weighted TIAs (paper Fig. 7, left half).
//
// Each bit slot of an optical digital word lands on its own
// photodetector; each photocurrent is amplified by a TIA whose gain
// (weight) is programmed per bit; the TIA outputs superimpose into one
// voltage plus a bias:
//   V_out = bias + Σ_i w_i · [slot i is on]
// With binary weights w_i ∝ ±2^i this is a photonic binary-weighted DAC;
// with the P-DAC's arccos-approximation weights it produces the MZM
// drive phase directly.  Weights are expressed in *output-voltage units
// per logic-1 slot*: the constructor folds responsivity, R_f and the
// slot's on-intensity into the weight so the algebra in src/core stays
// exactly the paper's.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"
#include "converters/eo_interface.hpp"
#include "photonics/photodetector.hpp"

namespace pdac::converters {

struct OeInterfaceConfig {
  /// Voltage contributed by a logic-1 in slot i (signed; MSB weight is
  /// negative for two's-complement inputs).
  std::vector<double> weights;
  double bias{0.0};              ///< constant added to the summed voltage
  double on_intensity{0.5};      ///< intensity of a logic-1 slot (½·amp²)
  /// Per-receiver static power: one PD+ring per bit plus the weighted TIA
  /// whose cost grows with its gain (see power_params.hpp derivation).
  units::Power pd_ring_power_per_bit{units::microwatts(160.5).watts()};
  units::Power tia_power_unit{units::microwatts(5.2).watts()};
};

class MultiBitOeInterface {
 public:
  explicit MultiBitOeInterface(OeInterfaceConfig cfg);

  [[nodiscard]] std::size_t bits() const { return cfg_.weights.size(); }

  /// Convert an optical digital word to the summed analog voltage.
  /// Slot intensities are compared against half the on-intensity, so the
  /// conversion tolerates amplitude noise on the optical link.
  [[nodiscard]] double convert(const OpticalDigitalWord& word) const;

  /// Same conversion but *analog-faithful*: each TIA contributes
  /// weight · (slot intensity / on intensity), i.e. no regeneration.
  /// Used to study sensitivity to link loss and crosstalk.
  [[nodiscard]] double convert_analog(const OpticalDigitalWord& word) const;

  /// Static power of this receiver (b PD/rings + b weighted TIAs).
  [[nodiscard]] units::Power power() const;

  [[nodiscard]] const OeInterfaceConfig& config() const { return cfg_; }

  /// Binary-weighted configuration for b-bit two's-complement codes:
  /// V_out = code / (2^{b−1} − 1) · v_scale  (a plain photonic DAC).
  static OeInterfaceConfig binary_weighted(int bits, double v_scale = 1.0);

 private:
  OeInterfaceConfig cfg_;
};

}  // namespace pdac::converters
