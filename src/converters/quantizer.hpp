// quantizer.hpp — symmetric fixed-point quantization.
//
// The accelerator operates on b-bit two's-complement operands mapped to
// the analog interval (−1, 1): a code c represents r = c / (2^{b−1} − 1),
// exactly the paper's example ("0x40 in an 8-bit system … 0x40/(2⁷−1) =
// 0.5").  Tensor operands are scaled by their max-abs before encoding and
// rescaled after detection.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pdac::converters {

/// Symmetric b-bit quantizer over (−1, 1).
class Quantizer {
 public:
  explicit Quantizer(int bits);

  [[nodiscard]] int bits() const { return bits_; }
  /// Largest positive code = 2^{b−1} − 1 (also the scale denominator).
  [[nodiscard]] std::int32_t max_code() const { return max_code_; }

  /// Quantize r ∈ [−1, 1] to the nearest code (saturating outside).
  [[nodiscard]] std::int32_t encode(double r) const;
  /// Analog value of a code: c / (2^{b−1} − 1).
  [[nodiscard]] double decode(std::int32_t code) const;
  /// encode→decode round trip (the value the hardware actually computes with).
  [[nodiscard]] double quantize(double r) const { return decode(encode(r)); }

  /// One quantization step in analog units.
  [[nodiscard]] double step() const { return 1.0 / static_cast<double>(max_code_); }

  /// On-grid test: when `value` is EXACTLY decode(c) for some code c
  /// (bit for bit — decode's division included, which is not the same
  /// rounding as multiplying by step()), writes c and returns true;
  /// otherwise returns false.  This is the precondition probe of the
  /// integer execution tier (DESIGN.md §15): a transfer table whose
  /// every entry snaps back to its code can be carried as int16 codes
  /// with zero value change.
  [[nodiscard]] bool snap_to_code(double value, std::int32_t* code) const;

 private:
  int bits_;
  std::int32_t max_code_;
};

/// Max-abs scale for mapping an arbitrary real tensor into [−1, 1].
/// Returns 1.0 for an all-zero input so dequantization stays a no-op.
double max_abs_scale(std::span<const double> values);

/// Quantize a whole vector with a shared max-abs scale; returns codes and
/// writes the scale used through `scale_out`.
std::vector<std::int32_t> quantize_vector(std::span<const double> values, const Quantizer& q,
                                          double* scale_out);

/// Reconstruct real values from codes and scale.
std::vector<double> dequantize_vector(std::span<const std::int32_t> codes, const Quantizer& q,
                                      double scale);

}  // namespace pdac::converters
