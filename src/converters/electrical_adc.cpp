#include "converters/electrical_adc.hpp"

#include "common/require.hpp"

namespace pdac::converters {

ElectricalAdc::ElectricalAdc(ElectricalAdcConfig cfg) : cfg_(cfg), quant_(cfg.bits) {
  PDAC_REQUIRE(cfg_.v_ref > 0.0, "ElectricalAdc: V_ref must be positive");
  PDAC_REQUIRE(cfg_.sample_rate.hertz() > 0.0, "ElectricalAdc: sample rate must be positive");
  PDAC_REQUIRE(cfg_.power_per_bit_watts > 0.0, "ElectricalAdc: power per bit must be positive");
}

std::int32_t ElectricalAdc::sample(double volts) const {
  return quant_.encode(volts / cfg_.v_ref);
}

double ElectricalAdc::sample_to_voltage(double volts) const {
  return quant_.decode(sample(volts)) * cfg_.v_ref;
}

units::Power ElectricalAdc::power() const {
  return power_model(cfg_.bits, cfg_.sample_rate, cfg_.power_per_bit_watts,
                     cfg_.reference_rate);
}

units::Energy ElectricalAdc::energy_per_conversion() const { return power() / cfg_.sample_rate; }

units::Power ElectricalAdc::power_model(int bits, units::Frequency rate, double per_bit_watts,
                                        units::Frequency reference_rate) {
  PDAC_REQUIRE(bits >= 1, "ElectricalAdc: bits must be positive");
  const double f_scale = rate.hertz() / reference_rate.hertz();
  return units::watts(per_bit_watts * static_cast<double>(bits) * f_scale);
}

}  // namespace pdac::converters
