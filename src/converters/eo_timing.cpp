#include "converters/eo_timing.hpp"

#include <cmath>

#include "common/math_utils.hpp"
#include "common/require.hpp"

namespace pdac::converters {

EoTimingAnalyzer::EoTimingAnalyzer(EoTimingConfig cfg) : cfg_(cfg) {
  PDAC_REQUIRE(cfg_.modulator_bandwidth_ghz > 0.0, "EoTiming: bandwidth must be positive");
  PDAC_REQUIRE(cfg_.clock.hertz() > 0.0, "EoTiming: clock must be positive");
  PDAC_REQUIRE(cfg_.bits_per_cycle >= 1, "EoTiming: at least one bit per cycle");
}

double EoTimingAnalyzer::slot_seconds() const {
  return 1.0 / (cfg_.clock.hertz() * static_cast<double>(cfg_.bits_per_cycle));
}

double EoTimingAnalyzer::tau_seconds() const {
  return 1.0 / (2.0 * math::kPi * cfg_.modulator_bandwidth_ghz * 1e9);
}

double EoTimingAnalyzer::settled_fraction() const {
  return 1.0 - std::exp(-slot_seconds() / tau_seconds());
}

double EoTimingAnalyzer::eye_opening() const {
  // Worst "1": rising from 0 reaches s; worst "0": falling from 1
  // leaves 1 − s.  Eye = s − (1 − s).
  return 2.0 * settled_fraction() - 1.0;
}

std::vector<double> EoTimingAnalyzer::waveform(const OpticalDigitalWord& word,
                                               int samples_per_slot) const {
  PDAC_REQUIRE(samples_per_slot >= 1, "EoTiming: at least one sample per slot");
  const double tau = tau_seconds();
  const double dt = slot_seconds() / static_cast<double>(samples_per_slot);
  const double decay = std::exp(-dt / tau);

  std::vector<double> out;
  out.reserve(word.bits() * static_cast<std::size_t>(samples_per_slot));
  // Normalized intensity targets per slot (1 = full on).
  double level = 0.0;  // modulator starts dark
  for (std::size_t slot = 0; slot < word.bits(); ++slot) {
    const double target = word.slots[slot].intensity() > 0.0 ? 1.0 : 0.0;
    for (int s = 0; s < samples_per_slot; ++s) {
      level = target + (level - target) * decay;
      out.push_back(level);
    }
  }
  return out;
}

bool EoTimingAnalyzer::slots_recoverable(const OpticalDigitalWord& word) const {
  constexpr int kSamples = 32;
  const auto wave = waveform(word, kSamples);
  for (std::size_t slot = 0; slot < word.bits(); ++slot) {
    const double sampled = wave[(slot + 1) * kSamples - 1];  // end of slot
    const bool bit = word.slots[slot].intensity() > 0.0;
    if ((sampled > 0.5) != bit) return false;
  }
  return true;
}

int EoTimingAnalyzer::max_bits_per_cycle(double modulator_bandwidth_ghz,
                                         units::Frequency clock, double min_eye) {
  int best = 0;
  for (int b = 1; b <= 64; ++b) {
    EoTimingConfig cfg;
    cfg.modulator_bandwidth_ghz = modulator_bandwidth_ghz;
    cfg.clock = clock;
    cfg.bits_per_cycle = b;
    if (EoTimingAnalyzer(cfg).eye_opening() >= min_eye) {
      best = b;
    } else {
      break;  // eye shrinks monotonically with b
    }
  }
  return best;
}

}  // namespace pdac::converters
