// electrical_adc.hpp — readout ADC at the accelerator outputs.
//
// Both the DAC-based and P-DAC-based systems keep electrical ADCs to
// digitize the photodetector results, so the ADC is a *shared* component
// in every power breakdown (Fig. 5 / Fig. 11).  Power model: a SAR-style
// converter performs ~b comparison steps per sample, so P ∝ b·f; the
// paper's numbers give exactly a 2.0× ADC power ratio between the 8-bit
// and 4-bit systems, consistent with this law (DESIGN.md §5).
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "converters/quantizer.hpp"

namespace pdac::converters {

struct ElectricalAdcConfig {
  int bits{8};
  double v_ref{1.0};  ///< full-scale input voltage
  units::Frequency sample_rate{units::gigahertz(5.0).hertz()};
  /// Per-bit power coefficient at f₀, watts (calibrated in power_params.hpp).
  double power_per_bit_watts{4.152e-3};
  units::Frequency reference_rate{units::gigahertz(5.0).hertz()};
};

class ElectricalAdc {
 public:
  explicit ElectricalAdc(ElectricalAdcConfig cfg);

  /// Digitize a voltage: clamp to ±V_ref, quantize to a signed b-bit code.
  [[nodiscard]] std::int32_t sample(double volts) const;

  /// Round-trip a voltage through the converter (what software reads back,
  /// expressed in volts again).
  [[nodiscard]] double sample_to_voltage(double volts) const;

  [[nodiscard]] units::Power power() const;
  [[nodiscard]] units::Energy energy_per_conversion() const;

  [[nodiscard]] const ElectricalAdcConfig& config() const { return cfg_; }

  static units::Power power_model(int bits, units::Frequency rate, double per_bit_watts,
                                  units::Frequency reference_rate);

 private:
  ElectricalAdcConfig cfg_;
  Quantizer quant_;
};

}  // namespace pdac::converters
