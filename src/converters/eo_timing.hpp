// eo_timing.hpp — timing/eye analysis of the multi-bit EO interface.
//
// The CAMON-style interface (paper Fig. 2) squeezes b bit-slots into one
// clock cycle, so each slot lasts 1/(b·f_clk) — 25 ps for 8 bits at
// 5 GHz.  A ring modulator with finite electro-optic bandwidth cannot
// switch instantaneously: modeled as a first-order response with
// τ = 1/(2π·BW), each slot's level settles only partially, and residual
// inter-symbol interference closes the eye.  This module computes the
// worst-case eye opening, the waveform of a word, and the largest bit
// count per cycle that keeps the eye above a detection margin — i.e.
// how far the paper's "n bits per wavelength per cycle" trick can be
// pushed for a given device.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "converters/eo_interface.hpp"

namespace pdac::converters {

struct EoTimingConfig {
  double modulator_bandwidth_ghz{20.0};  ///< 3-dB EO bandwidth of the ring
  units::Frequency clock{units::gigahertz(5.0).hertz()};
  int bits_per_cycle{8};
};

class EoTimingAnalyzer {
 public:
  explicit EoTimingAnalyzer(EoTimingConfig cfg);

  [[nodiscard]] double slot_seconds() const;
  /// First-order settling time constant τ = 1/(2π·BW).
  [[nodiscard]] double tau_seconds() const;
  /// Fraction of a level transition completed after one slot.
  [[nodiscard]] double settled_fraction() const;

  /// Worst-case eye opening at the end-of-slot sampling instant, as a
  /// fraction of the full swing: 2·(1 − e^{−T/τ}) − 1.  ≤ 0 means the
  /// eye is closed (undetectable).
  [[nodiscard]] double eye_opening() const;

  /// Normalized intensity waveform of a word: `samples_per_slot` points
  /// per bit slot, with first-order transitions between slot targets.
  [[nodiscard]] std::vector<double> waveform(const OpticalDigitalWord& word,
                                             int samples_per_slot = 16) const;

  /// Threshold-sample the waveform at each slot end and recover the bit
  /// pattern (LSB first) — true when the full word survives the link.
  [[nodiscard]] bool slots_recoverable(const OpticalDigitalWord& word) const;

  /// Largest bits-per-cycle keeping the eye ≥ `min_eye` at this clock
  /// and bandwidth (0 if even one bit per cycle fails).
  [[nodiscard]] static int max_bits_per_cycle(double modulator_bandwidth_ghz,
                                              units::Frequency clock, double min_eye);

  [[nodiscard]] const EoTimingConfig& config() const { return cfg_; }

 private:
  EoTimingConfig cfg_;
};

}  // namespace pdac::converters
