#include "converters/oe_interface.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/require.hpp"

namespace pdac::converters {

MultiBitOeInterface::MultiBitOeInterface(OeInterfaceConfig cfg) : cfg_(std::move(cfg)) {
  PDAC_REQUIRE(!cfg_.weights.empty(), "OeInterface: needs at least one bit weight");
  PDAC_REQUIRE(cfg_.on_intensity > 0.0, "OeInterface: on intensity must be positive");
}

double MultiBitOeInterface::convert(const OpticalDigitalWord& word) const {
  PDAC_REQUIRE(word.bits() == cfg_.weights.size(), "OeInterface: word width mismatch");
  double v = cfg_.bias;
  const double threshold = on_off_intensity_threshold(cfg_.on_intensity);
  for (std::size_t i = 0; i < word.bits(); ++i) {
    if (word.slots[i].intensity() > threshold) v += cfg_.weights[i];
  }
  return v;
}

double MultiBitOeInterface::convert_analog(const OpticalDigitalWord& word) const {
  PDAC_REQUIRE(word.bits() == cfg_.weights.size(), "OeInterface: word width mismatch");
  double v = cfg_.bias;
  for (std::size_t i = 0; i < word.bits(); ++i) {
    v += cfg_.weights[i] * (word.slots[i].intensity() / cfg_.on_intensity);
  }
  return v;
}

units::Power MultiBitOeInterface::power() const {
  const double b = static_cast<double>(cfg_.weights.size());
  // The weighted TIA's bias current scales with its gain; express each
  // gain relative to the smallest non-zero weight so a binary-weighted
  // bank costs Σ 2^i = 2^b − 1 gain units.
  double min_w = std::numeric_limits<double>::infinity();
  for (double w : cfg_.weights) {
    const double a = std::abs(w);
    if (a > 0.0) min_w = std::min(min_w, a);
  }
  double gain_units = 0.0;
  if (std::isfinite(min_w)) {
    for (double w : cfg_.weights) gain_units += std::abs(w) / min_w;
  }
  return units::watts(cfg_.pd_ring_power_per_bit.watts() * b +
                      cfg_.tia_power_unit.watts() * gain_units);
}

OeInterfaceConfig MultiBitOeInterface::binary_weighted(int bits, double v_scale) {
  PDAC_REQUIRE(bits >= 2 && bits <= 16, "OeInterface: bits in [2, 16]");
  OeInterfaceConfig cfg;
  const double denom = static_cast<double>((1 << (bits - 1)) - 1);
  cfg.weights.resize(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) {
    double w = std::exp2(i) / denom * v_scale;
    if (i == bits - 1) w = -w;  // two's-complement sign bit
    cfg.weights[static_cast<std::size_t>(i)] = w;
  }
  return cfg;
}

}  // namespace pdac::converters
