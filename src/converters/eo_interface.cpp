#include "converters/eo_interface.hpp"

#include "common/require.hpp"

namespace pdac::converters {

MultiBitEoInterface::MultiBitEoInterface(EoInterfaceConfig cfg) : cfg_(cfg) {
  PDAC_REQUIRE(cfg_.bits >= 2 && cfg_.bits <= 16, "EoInterface: bits in [2, 16]");
  PDAC_REQUIRE(cfg_.on_amplitude > 0.0, "EoInterface: on amplitude must be positive");
  PDAC_REQUIRE(cfg_.clock.hertz() > 0.0, "EoInterface: clock must be positive");
}

OpticalDigitalWord MultiBitEoInterface::encode(std::int32_t code) const {
  const int b = cfg_.bits;
  const std::int32_t lo = -(1 << (b - 1));
  const std::int32_t hi = (1 << (b - 1)) - 1;
  PDAC_REQUIRE(code >= lo && code <= hi, "EoInterface: code out of range for bit width");

  // Two's-complement bit pattern of the signed code.
  const auto pattern = static_cast<std::uint32_t>(code) & ((1u << b) - 1u);

  OpticalDigitalWord word;
  word.slots.resize(static_cast<std::size_t>(b));
  for (int i = 0; i < b; ++i) {
    const bool on = ((pattern >> i) & 1u) != 0u;
    word.slots[static_cast<std::size_t>(i)].amplitude =
        photonics::Complex{on ? cfg_.on_amplitude : 0.0, 0.0};
  }
  return word;
}

std::int32_t MultiBitEoInterface::decode(const OpticalDigitalWord& word) const {
  PDAC_REQUIRE(word.bits() == static_cast<std::size_t>(cfg_.bits),
               "EoInterface: word width mismatch");
  const double threshold = on_off_threshold_for_amplitude(cfg_.on_amplitude);
  std::uint32_t pattern = 0;
  for (std::size_t i = 0; i < word.bits(); ++i) {
    if (word.bit(i, threshold)) pattern |= (1u << i);
  }
  // Sign-extend from bit b-1.
  const std::uint32_t sign_bit = 1u << (cfg_.bits - 1);
  if ((pattern & sign_bit) != 0u) {
    pattern |= ~((sign_bit << 1) - 1u);
  }
  return static_cast<std::int32_t>(pattern);
}

std::vector<OpticalDigitalWord> MultiBitEoInterface::encode_vector(
    const std::vector<std::int32_t>& codes) const {
  std::vector<OpticalDigitalWord> words;
  words.reserve(codes.size());
  for (auto c : codes) words.push_back(encode(c));
  return words;
}

units::Power MultiBitEoInterface::streaming_power(std::size_t lanes) const {
  const double bits_per_second =
      static_cast<double>(cfg_.bits) * cfg_.clock.hertz() * static_cast<double>(lanes);
  return units::watts(cfg_.energy_per_bit.joules() * bits_per_second);
}

}  // namespace pdac::converters
