#include "converters/quantizer.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace pdac::converters {

Quantizer::Quantizer(int bits) : bits_(bits) {
  PDAC_REQUIRE(bits >= 2 && bits <= 16, "Quantizer: bits in [2, 16]");
  max_code_ = static_cast<std::int32_t>((1 << (bits - 1)) - 1);
}

std::int32_t Quantizer::encode(double r) const {
  const double clamped = std::clamp(r, -1.0, 1.0);
  const auto code = static_cast<std::int32_t>(std::lround(clamped * max_code_));
  return std::clamp(code, -max_code_, max_code_);
}

double Quantizer::decode(std::int32_t code) const {
  PDAC_REQUIRE(code >= -max_code_ && code <= max_code_, "Quantizer: code out of range");
  return static_cast<double>(code) / static_cast<double>(max_code_);
}

bool Quantizer::snap_to_code(double value, std::int32_t* code) const {
  if (!(std::abs(value) <= 1.0)) return false;  // NaN-safe: NaN is off-grid
  const auto c = static_cast<std::int32_t>(std::lround(value * max_code_));
  if (c < -max_code_ || c > max_code_) return false;
  // Exactness, not closeness: decode() must reproduce the value bitwise.
  if (decode(c) != value) return false;
  if (code != nullptr) *code = c;
  return true;
}

double max_abs_scale(std::span<const double> values) {
  double m = 0.0;
  for (double v : values) m = std::max(m, std::abs(v));
  return m > 0.0 ? m : 1.0;
}

std::vector<std::int32_t> quantize_vector(std::span<const double> values, const Quantizer& q,
                                          double* scale_out) {
  const double scale = max_abs_scale(values);
  if (scale_out != nullptr) *scale_out = scale;
  std::vector<std::int32_t> codes(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) codes[i] = q.encode(values[i] / scale);
  return codes;
}

std::vector<double> dequantize_vector(std::span<const std::int32_t> codes, const Quantizer& q,
                                      double scale) {
  std::vector<double> out(codes.size());
  for (std::size_t i = 0; i < codes.size(); ++i) out[i] = q.decode(codes[i]) * scale;
  return out;
}

}  // namespace pdac::converters
