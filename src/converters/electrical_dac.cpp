#include "converters/electrical_dac.hpp"

#include <cmath>

#include "common/require.hpp"

namespace pdac::converters {

ElectricalDac::ElectricalDac(ElectricalDacConfig cfg) : cfg_(cfg), quant_(cfg.bits) {
  PDAC_REQUIRE(cfg_.v_ref > 0.0, "ElectricalDac: V_ref must be positive");
  PDAC_REQUIRE(cfg_.sample_rate.hertz() > 0.0, "ElectricalDac: sample rate must be positive");
  PDAC_REQUIRE(cfg_.power_kappa_watts > 0.0, "ElectricalDac: power κ must be positive");
}

double ElectricalDac::convert(std::int32_t code) const {
  return quant_.decode(code) * cfg_.v_ref;
}

double ElectricalDac::convert_normalized(double r) const {
  return quant_.quantize(r) * cfg_.v_ref;
}

units::Power ElectricalDac::power() const {
  return power_model(cfg_.bits, cfg_.sample_rate, cfg_.power_kappa_watts, cfg_.reference_rate);
}

units::Energy ElectricalDac::energy_per_conversion() const {
  return power() / cfg_.sample_rate;
}

units::Power ElectricalDac::power_model(int bits, units::Frequency rate, double kappa_watts,
                                        units::Frequency reference_rate) {
  PDAC_REQUIRE(bits >= 1, "ElectricalDac: bits must be positive");
  const double b = static_cast<double>(bits);
  const double f_scale = rate.hertz() / reference_rate.hertz();
  return units::watts(kappa_watts * b * std::exp2(b / 2.0) * f_scale);
}

}  // namespace pdac::converters
