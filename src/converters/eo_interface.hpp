// eo_interface.hpp — CAMON-style multi-bit electrical→optical interface
// (paper Fig. 2).
//
// One clock cycle is divided into b time slots; a transmitter modulates
// an MRR on/off in each slot so that a single laser wavelength carries a
// full b-bit word per cycle.  The resulting *optical digital* word is
// what travels over WDM from the M2 SRAM to the P-DACs.
//
// Bit convention: two's complement, slot i carries bit i (LSB first);
// the MSB slot carries the sign bit with weight −2^{b−1}.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "photonics/optical_field.hpp"

namespace pdac::converters {

/// The single on/off decision threshold every receiver in the datapath
/// uses to regenerate an optical digital word: halfway between the off
/// (0) and on slot intensities, the maximum-margin slicing level for
/// symmetric amplitude noise.  Both the EO loopback decoder and the
/// multi-bit OE interface slice here, so a word always reads the same at
/// every receiver — including under laser-droop faults, where a drooped
/// slot either survives at both receivers or drops at both.
[[nodiscard]] constexpr double on_off_intensity_threshold(double on_intensity) {
  return 0.5 * on_intensity;
}

/// Same threshold expressed from the logic-1 carrier amplitude
/// (on intensity = ½·amplitude², the I ∝ ½|E|² convention).
[[nodiscard]] constexpr double on_off_threshold_for_amplitude(double on_amplitude) {
  return on_off_intensity_threshold(0.5 * on_amplitude * on_amplitude);
}

/// A b-bit word expressed as optical on/off field samples, one per time
/// slot, all on one wavelength.
struct OpticalDigitalWord {
  std::vector<photonics::FieldSample> slots;  ///< index i = bit i (LSB first)

  [[nodiscard]] std::size_t bits() const { return slots.size(); }

  /// Threshold-decode slot i back to a logic level (receiver view).
  [[nodiscard]] bool bit(std::size_t i, double on_intensity_threshold) const {
    return slots.at(i).intensity() > on_intensity_threshold;
  }
};

struct EoInterfaceConfig {
  int bits{8};
  double on_amplitude{1.0};  ///< carrier amplitude of a logic-1 slot
  units::Frequency clock{units::gigahertz(5.0).hertz()};
  units::Energy energy_per_bit{units::femtojoules(50.0).joules()};  ///< serializer + ring drive
};

class MultiBitEoInterface {
 public:
  explicit MultiBitEoInterface(EoInterfaceConfig cfg);

  /// Encode a signed code (range [−2^{b−1}, 2^{b−1}−1]) into its optical
  /// digital word, two's complement.
  [[nodiscard]] OpticalDigitalWord encode(std::int32_t code) const;

  /// Recover the signed code from a word (ideal threshold receiver) —
  /// used by tests and by the loopback datapath checks.
  [[nodiscard]] std::int32_t decode(const OpticalDigitalWord& word) const;

  /// Encode a vector of codes, one word per WDM wavelength.
  [[nodiscard]] std::vector<OpticalDigitalWord> encode_vector(
      const std::vector<std::int32_t>& codes) const;

  /// Average power when streaming words continuously at the clock rate,
  /// for `lanes` parallel wavelengths.
  [[nodiscard]] units::Power streaming_power(std::size_t lanes) const;

  [[nodiscard]] const EoInterfaceConfig& config() const { return cfg_; }

 private:
  EoInterfaceConfig cfg_;
};

}  // namespace pdac::converters
