// electrical_dac.hpp — the traditional electrical DAC the P-DAC replaces.
//
// Functional model: a b-bit code maps linearly onto [−V_ref, +V_ref].
// Power model: anchored to the switched-capacitor DAC of Caragiulo et
// al. [2] and scaled as  P(b, f) = κ · b · 2^{b/2} · f / f₀ , the scaling
// law that reproduces the paper's own implied 4-bit→8-bit DAC power ratio
// of 8.0× (Fig. 5 + Fig. 11; see DESIGN.md §5).  κ is calibrated in
// src/arch/power_params.hpp.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "converters/quantizer.hpp"

namespace pdac::converters {

struct ElectricalDacConfig {
  int bits{8};
  double v_ref{1.0};  ///< full-scale output voltage
  units::Frequency sample_rate{units::gigahertz(5.0).hertz()};
  /// κ in the scaling law, in watts at (b=1, f=f₀); see power_params.hpp.
  double power_kappa_watts{98.07e-6};
  units::Frequency reference_rate{units::gigahertz(5.0).hertz()};  ///< f₀
};

class ElectricalDac {
 public:
  explicit ElectricalDac(ElectricalDacConfig cfg);

  /// Output voltage for a signed code (two's-complement value range
  /// [−(2^{b−1}−1), 2^{b−1}−1]); linear, zero-code → 0 V.
  [[nodiscard]] double convert(std::int32_t code) const;

  /// Voltage for a normalized value r ∈ [−1, 1] after b-bit quantization —
  /// what the MZM driver sees when the controller requests r.
  [[nodiscard]] double convert_normalized(double r) const;

  /// Static power while clocking at the configured sample rate.
  [[nodiscard]] units::Power power() const;
  /// Energy charged per conversion event: P / f.
  [[nodiscard]] units::Energy energy_per_conversion() const;

  [[nodiscard]] const ElectricalDacConfig& config() const { return cfg_; }
  [[nodiscard]] const Quantizer& quantizer() const { return quant_; }

  /// The scaling law itself, usable without an instance (bench sweeps).
  static units::Power power_model(int bits, units::Frequency rate, double kappa_watts,
                                  units::Frequency reference_rate);

 private:
  ElectricalDacConfig cfg_;
  Quantizer quant_;
};

}  // namespace pdac::converters
