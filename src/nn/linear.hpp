// linear.hpp — fully-connected layer executed on a GemmBackend.
#pragma once

#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "nn/backend.hpp"

namespace pdac::nn {

/// y = x·W + b, with W ∈ (in × out).  Weights are owned by the layer;
/// execution is delegated to the backend so the same layer runs on the
/// reference or photonic cores.
class Linear {
 public:
  Linear(std::size_t in_features, std::size_t out_features);

  /// Xavier-style random initialization (synthetic pre-trained weights).
  void init_random(Rng& rng);

  [[nodiscard]] Matrix forward(const Matrix& x, GemmBackend& backend) const;

  [[nodiscard]] std::size_t in_features() const { return weight_.rows(); }
  [[nodiscard]] std::size_t out_features() const { return weight_.cols(); }

  Matrix& weight() { return weight_; }
  [[nodiscard]] const Matrix& weight() const { return weight_; }
  std::vector<double>& bias() { return bias_; }
  [[nodiscard]] const std::vector<double>& bias() const { return bias_; }

 private:
  Matrix weight_;
  std::vector<double> bias_;
};

}  // namespace pdac::nn
