// linear.hpp — fully-connected layer executed on a GemmBackend.
#pragma once

#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "nn/backend.hpp"

namespace pdac::nn {

/// y = x·W + b, with W ∈ (in × out).  Weights are owned by the layer;
/// execution is delegated to the backend so the same layer runs on the
/// reference or photonic cores.
///
/// Weight registration (DESIGN.md §10): every layer carries a globally
/// unique weight id plus a content version that is bumped whenever the
/// weights may have changed (mutable weight() access, re-init).
/// forward() hands both to the backend as a WeightHandle, which is what
/// lets photonic backends reuse the prepared encoding of W across
/// tokens.  Holding the reference returned by weight() across forwards
/// and mutating it later is outside the contract — re-take the accessor
/// after mutating.
class Linear {
 public:
  Linear(std::size_t in_features, std::size_t out_features);

  /// Copies get a fresh identity: two layers must never share a cache
  /// slot once their weights can diverge.  (Moves keep the identity —
  /// the moved-from layer is dead; if it is revived, its first mutable
  /// access separates the versions again.)
  Linear(const Linear& other);
  Linear& operator=(const Linear& other);
  Linear(Linear&&) noexcept = default;
  Linear& operator=(Linear&&) noexcept = default;
  ~Linear() = default;

  /// Xavier-style random initialization (synthetic pre-trained weights).
  void init_random(Rng& rng);

  [[nodiscard]] Matrix forward(const Matrix& x, GemmBackend& backend) const;

  [[nodiscard]] std::size_t in_features() const { return weight_.rows(); }
  [[nodiscard]] std::size_t out_features() const { return weight_.cols(); }

  /// Mutable access assumes mutation: the content version is bumped so
  /// cached encodings of the old contents are invalidated.
  Matrix& weight() {
    version_ = next_stamp();
    return weight_;
  }
  [[nodiscard]] const Matrix& weight() const { return weight_; }
  std::vector<double>& bias() { return bias_; }
  [[nodiscard]] const std::vector<double>& bias() const { return bias_; }

  /// Identity + content version the backends key their operand caches by.
  [[nodiscard]] WeightHandle weight_handle() const { return {id_, version_}; }

 private:
  /// Process-wide unique stamp (atomic counter, never 0) — used for both
  /// ids and versions so no two (id, version) pairs ever collide.
  static std::uint64_t next_stamp();

  Matrix weight_;
  std::vector<double> bias_;
  std::uint64_t id_;
  std::uint64_t version_;
};

}  // namespace pdac::nn
