// decode_trace.hpp — autoregressive (decode-phase) LLM inference traces.
//
// The paper targets LLM inference, whose serving cost is dominated by
// the KV-cache decode phase (§II-A1: "the KV cache stores precomputed K
// and V vectors … without redundant calculations").  This module traces
// that phase: per generated token every GEMM collapses to a GEMV
// (m = 1), the attention scores/context products read the K and V
// caches from memory, and arithmetic intensity drops by orders of
// magnitude versus prefill — the regime where the P-DAC's advantage is
// most diluted by data movement.  The decode benches quantify exactly
// that.
#pragma once

#include <cstdint>

#include "nn/model_config.hpp"
#include "nn/workload_trace.hpp"

namespace pdac::nn {

/// Trace the generation of ONE token with a KV cache holding
/// `context_len` previous tokens (prompt + already-generated).
WorkloadTrace trace_decode_step(const TransformerConfig& cfg, std::size_t context_len);

/// Batched decode: `batch` independent sequences advance one token each.
/// Projections and FFN GEMVs fuse into (batch × d) GEMMs — restoring
/// weight reuse and DDot-row occupancy — while every sequence still
/// streams its own KV cache (attention stays per-sequence).  This is the
/// standard LLM-serving lever; the A15 bench quantifies how much of the
/// P-DAC's prefill-class saving it recovers.
WorkloadTrace trace_decode_step_batched(const TransformerConfig& cfg,
                                        std::size_t context_len, std::size_t batch);

/// Trace a full generation episode: a prefill pass over `prompt_len`
/// tokens followed by `generated_tokens` decode steps with a growing
/// cache.  The returned trace concatenates all ops.
WorkloadTrace trace_generation(const TransformerConfig& cfg, std::size_t prompt_len,
                               std::size_t generated_tokens);

/// Decode step with the KV cache stored at `kv_bits` precision while
/// operands compute at `operand_bits` (KV-cache quantization, the
/// standard serving memory/bandwidth lever).  The energy model charges
/// movement at the operand width, so the cache reads are rescaled to
/// operand-width-equivalent elements: elements · kv_bits / operand_bits
/// (exact for the usual power-of-two pairs).
WorkloadTrace trace_decode_step_quantized_kv(const TransformerConfig& cfg,
                                             std::size_t context_len, int operand_bits,
                                             int kv_bits);

/// KV-cache footprint in bytes for a given context length and operand
/// width: 2 (K and V) · layers · context · d_model · bits/8.
std::uint64_t kv_cache_bytes(const TransformerConfig& cfg, std::size_t context_len,
                             int bits);

/// Arithmetic intensity (MACs per byte moved) of a trace at a given
/// operand width — the roofline x-coordinate.
double arithmetic_intensity(const WorkloadTrace& trace, int bits);

}  // namespace pdac::nn
