// attention.hpp — multi-head self-attention executed on a GemmBackend.
//
// All five GEMM families of the attention block (Q/K/V projections, the
// dynamic–dynamic Q·Kᵀ and A·V products, and the output projection) run
// through the backend, so on the photonic backends every score and every
// context vector passes through simulated modulators and DDots.
//
// Weight-stationary split (DESIGN.md §10): the four projections are
// Linear layers, so their weights are registered with the backend's
// operand cache and their encodings are reused across forwards.  The
// Q·Kᵀ and A·V products multiply two *activations* — fresh every token
// by construction — and deliberately go through the uncached matmul.
#pragma once

#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "nn/backend.hpp"
#include "nn/linear.hpp"

namespace pdac::nn {

class MultiHeadAttention {
 public:
  MultiHeadAttention(std::size_t d_model, std::size_t heads);

  void init_random(Rng& rng);

  /// x: (seq × d_model) → (seq × d_model).
  [[nodiscard]] Matrix forward(const Matrix& x, GemmBackend& backend) const;

  [[nodiscard]] std::size_t d_model() const { return d_model_; }
  [[nodiscard]] std::size_t heads() const { return heads_; }
  [[nodiscard]] std::size_t d_head() const { return d_model_ / heads_; }

  Linear& q_proj() { return q_; }
  Linear& k_proj() { return k_; }
  Linear& v_proj() { return v_; }
  Linear& o_proj() { return o_; }

 private:
  /// Slice head h (columns [h·d_head, (h+1)·d_head)) out of a projection.
  [[nodiscard]] Matrix head_slice(const Matrix& m, std::size_t h) const;

  std::size_t d_model_;
  std::size_t heads_;
  Linear q_, k_, v_, o_;
};

}  // namespace pdac::nn
