// attention.hpp — multi-head self-attention executed on a GemmBackend.
//
// All five GEMM families of the attention block (Q/K/V projections, the
// dynamic–dynamic Q·Kᵀ and A·V products, and the output projection) run
// through the backend, so on the photonic backends every score and every
// context vector passes through simulated modulators and DDots.
//
// Weight-stationary split (DESIGN.md §10): the four projections are
// Linear layers, so their weights are registered with the backend's
// operand cache and their encodings are reused across forwards.  The
// Q·Kᵀ and A·V products multiply two *activations* — fresh every token
// by construction — and in full-sequence forward() go through the
// uncached matmul.
//
// Decode path (DESIGN.md §17): forward_decode processes ONE new token
// against per-head K/V histories held in an AttentionKvState.  The
// histories are append-only, so the dynamic products route through
// backend.matmul_kv with per-head KvHandles — caching backends extend a
// resident prepared encoding in place instead of re-preparing the whole
// history each step.  KvDecodeMode::kUnprepared forces the plain matmul
// baseline for bit-identity gating.
//
// Thread-safety: forward/forward_decode reuse per-instance scratch
// buffers (head slices, Kᵀ staging) to avoid per-head reallocation, so a
// MultiHeadAttention instance must not run forwards concurrently — give
// each concurrent caller its own instance, as the serving engine gives
// each backend its own model replica.
#pragma once

#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "nn/backend.hpp"
#include "nn/linear.hpp"

namespace pdac::nn {

/// How forward_decode executes the dynamic score/context products.
enum class KvDecodeMode {
  kUnprepared,  ///< plain backend.matmul each step (O(t) prepare baseline)
  kPrepared,    ///< backend.matmul_kv against resident prepared operands
};

/// Per-sequence decode state: each head's K/V history plus the KvHandles
/// naming the two growing operands (scores over K, context over V) to
/// the backend.  Create via MultiHeadAttention::make_kv_state(); retire
/// via release_kv_state() so caching backends drop residency.
struct AttentionKvState {
  std::vector<Matrix> k_heads;  ///< per head: (tokens × d_head)
  std::vector<Matrix> v_heads;  ///< per head: (tokens × d_head)
  std::vector<KvHandle> score_handles;  ///< axis kCols, operand = K
  std::vector<KvHandle> ctx_handles;    ///< axis kRows, operand = V
  std::size_t tokens{0};
};

class MultiHeadAttention {
 public:
  MultiHeadAttention(std::size_t d_model, std::size_t heads);

  void init_random(Rng& rng);

  /// x: (seq × d_model) → (seq × d_model).
  [[nodiscard]] Matrix forward(const Matrix& x, GemmBackend& backend) const;

  /// One decode step: x is the NEW token's activation (1 × d_model).
  /// Appends this token's per-head K/V rows to `kv`, attends over the
  /// whole history, and returns the (1 × d_model) output.  Outputs and
  /// backend events are bit-identical across modes at every length.
  [[nodiscard]] Matrix forward_decode(const Matrix& x, GemmBackend& backend,
                                      AttentionKvState& kv,
                                      KvDecodeMode mode = KvDecodeMode::kPrepared) const;

  /// Fresh decode state with process-unique KV handles for every head.
  [[nodiscard]] AttentionKvState make_kv_state() const;

  /// Drop the state's resident prepared operands from the backend.
  static void release_kv_state(const AttentionKvState& kv, GemmBackend& backend);

  [[nodiscard]] std::size_t d_model() const { return d_model_; }
  [[nodiscard]] std::size_t heads() const { return heads_; }
  [[nodiscard]] std::size_t d_head() const { return d_model_ / heads_; }

  Linear& q_proj() { return q_; }
  Linear& k_proj() { return k_; }
  Linear& v_proj() { return v_; }
  Linear& o_proj() { return o_; }

 private:
  /// Slice head h (columns [h·d_head, (h+1)·d_head)) of m into `dst`.
  void head_slice_into(const Matrix& m, std::size_t h, Matrix& dst) const;

  std::size_t d_model_;
  std::size_t heads_;
  Linear q_, k_, v_, o_;

  // Reusable per-head scratch (see thread-safety note above): slice
  // destinations and the Kᵀ staging buffer, resized in place instead of
  // reallocated per head per step.
  mutable Matrix qh_scratch_, kh_scratch_, vh_scratch_, kht_scratch_;
};

}  // namespace pdac::nn
