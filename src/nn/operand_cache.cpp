#include "nn/operand_cache.hpp"

#include <utility>

#include "common/require.hpp"

namespace pdac::nn {

OperandCache::OperandCache(OperandCacheConfig cfg) : cfg_(cfg) {}

std::shared_ptr<const ptc::PreparedOperand> OperandCache::lookup(std::uint64_t id,
                                                                 std::uint64_t version,
                                                                 std::uint64_t epoch) {
  if (!cfg_.enabled || id == 0) {
    ++stats_.misses;
    return nullptr;
  }
  const auto it = index_.find(id);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  Entry& e = *it->second;
  if (e.version != version || e.op->epoch != epoch) {
    // Stale contents or stale encoder state: the entry must never be
    // served again, so erase it on the spot.
    ++stats_.invalidations;
    drop(it->second);
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++stats_.hits;
  return e.op;
}

bool OperandCache::contains(std::uint64_t id, std::uint64_t version,
                            std::uint64_t epoch) const {
  if (!cfg_.enabled || id == 0) return false;
  const auto it = index_.find(id);
  if (it == index_.end()) return false;
  const Entry& e = *it->second;
  return e.version == version && e.op->epoch == epoch;
}

void OperandCache::insert(std::uint64_t id, std::uint64_t version,
                          std::shared_ptr<const ptc::PreparedOperand> op) {
  PDAC_REQUIRE(op != nullptr, "OperandCache: cannot insert a null operand");
  if (!cfg_.enabled || id == 0) return;

  // An operand that exceeds the whole capacity can never survive the
  // eviction loop below — admitting it would flush every resident entry
  // and then drop the newcomer itself, a full cache wipe for nothing.
  // Reject it before touching any resident state.
  const std::size_t bytes = op->bytes();
  if (bytes > cfg_.capacity_bytes) {
    ++stats_.oversized_rejects;
    return;
  }

  const auto it = index_.find(id);
  if (it != index_.end()) drop(it->second);  // one live version per weight
  lru_.push_front(Entry{id, version, std::move(op), bytes});
  index_[id] = lru_.begin();
  stats_.resident_bytes += bytes;
  stats_.entries = lru_.size();

  while (stats_.resident_bytes > cfg_.capacity_bytes && !lru_.empty()) {
    ++stats_.evictions;
    drop(std::prev(lru_.end()));
  }
}

void OperandCache::erase(std::uint64_t id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return;
  ++stats_.invalidations;
  drop(it->second);
}

void OperandCache::clear() {
  lru_.clear();
  index_.clear();
  stats_.resident_bytes = 0;
  stats_.entries = 0;
}

void OperandCache::drop(std::list<Entry>::iterator it) {
  stats_.resident_bytes -= it->bytes;
  index_.erase(it->id);
  lru_.erase(it);
  stats_.entries = lru_.size();
}

}  // namespace pdac::nn
