// ops.hpp — element-wise / normalization operators of the transformer.
//
// These run on the accelerator's digital vector unit (not the photonic
// core), matching the paper's system split: GEMMs go to the DDot arrays,
// everything else stays electrical.
#pragma once

#include <span>
#include <vector>

#include "common/matrix.hpp"

namespace pdac::nn {

/// Numerically stable row-wise softmax, in place.
void softmax_rows(Matrix& m);

/// GELU activation (tanh approximation), in place.
void gelu(Matrix& m);

/// Layer normalization over each row with learned scale/shift, in place.
/// gamma/beta must have m.cols() entries.
void layer_norm(Matrix& m, std::span<const double> gamma, std::span<const double> beta,
                double eps = 1e-5);

/// a += b (residual connection); shapes must match.
void add_inplace(Matrix& a, const Matrix& b);

/// Add a bias row vector to every row of m, in place.
void add_bias(Matrix& m, std::span<const double> bias);

/// Scale every element, in place (e.g. 1/sqrt(d_head) attention scaling).
void scale_inplace(Matrix& m, double s);

}  // namespace pdac::nn
