// operand_cache.hpp — byte-capacity LRU cache of prepared (weight-
// stationary) GEMM operands.
//
// LLM inference reuses every weight matrix once per token (§II-A1), so
// the B-side prepare pass — scale, transpose, normalize, LUT-encode —
// is pure amortizable work (DESIGN.md §10).  This cache maps a weight's
// identity to its ptc::PreparedOperand so decode loops and accuracy
// sweeps prepare once and run many.
//
// Keys carry three pieces of freshness state, all checked on lookup:
//   * id       — stable identity of the weight tensor (Linear assigns a
//                globally unique stamp at construction);
//   * version  — bumped whenever the weight's *contents* may have
//                changed (mutable access, re-init);
//   * epoch    — the encoder state (driver trim / fault / lane state)
//                the entry was prepared under; the caller passes the
//                current epoch and any mismatch invalidates the entry.
// A lookup that fails any check erases the entry (counted as an
// invalidation) and reports a miss, so stale encodings can never be
// returned.  Eviction is least-recently-used by resident bytes.
//
// Not thread-safe: backends own one cache each and are driven from one
// thread (the GEMM engine parallelizes internally).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "ptc/gemm_engine.hpp"

namespace pdac::nn {

/// Identity + content-version pair a layer hands to the backend with
/// every cacheable product (Linear::weight_handle()).
struct WeightHandle {
  std::uint64_t id{0};       ///< stable weight identity (0 = uncacheable)
  std::uint64_t version{0};  ///< content stamp, bumped on mutable access
};

struct OperandCacheConfig {
  std::size_t capacity_bytes{256ull << 20};  ///< LRU eviction threshold
  bool enabled{true};  ///< false = every lookup misses, nothing is stored
};

struct OperandCacheStats {
  std::uint64_t hits{0};
  std::uint64_t misses{0};
  std::uint64_t evictions{0};      ///< entries dropped by capacity pressure
  std::uint64_t invalidations{0};  ///< entries dropped as stale (version/epoch)
  std::uint64_t oversized_rejects{0};  ///< inserts refused as larger than capacity
  std::uint64_t resident_bytes{0};
  std::uint64_t entries{0};
};

class OperandCache {
 public:
  explicit OperandCache(OperandCacheConfig cfg = {});

  /// The prepared operand for (id, version) under `epoch`, or nullptr.
  /// A stored entry whose version or epoch mismatches is erased before
  /// the miss is reported — stale encodings never escape.
  [[nodiscard]] std::shared_ptr<const ptc::PreparedOperand> lookup(std::uint64_t id,
                                                                   std::uint64_t version,
                                                                   std::uint64_t epoch);

  /// Store a freshly prepared operand, evicting LRU entries over the
  /// byte capacity.  An operand larger than the whole capacity can never
  /// be served from residency, so it is rejected up front — residents
  /// are left untouched and the refusal is counted in
  /// stats().oversized_rejects.  id 0 is reserved for uncacheable
  /// products and ignored.
  void insert(std::uint64_t id, std::uint64_t version,
              std::shared_ptr<const ptc::PreparedOperand> op);

  /// Pure residency probe for placement affinity (serve::BackendPool):
  /// true iff (id, version) is resident and fresh under `epoch`.  No LRU
  /// reordering, no stats mutation, no stale-entry eviction — the
  /// scheduler may probe many backends without perturbing any of them.
  [[nodiscard]] bool contains(std::uint64_t id, std::uint64_t version,
                              std::uint64_t epoch) const;

  /// Drop one weight's entry if present (counted as an invalidation) —
  /// for staleness the caller detects out-of-band, e.g. a lane-packing
  /// change that did not bump the epoch.
  void erase(std::uint64_t id);

  /// Drop everything (stats are kept; resident bytes/entries reset).
  void clear();

  [[nodiscard]] const OperandCacheStats& stats() const { return stats_; }
  [[nodiscard]] const OperandCacheConfig& config() const { return cfg_; }

 private:
  struct Entry {
    std::uint64_t id;
    std::uint64_t version;
    std::shared_ptr<const ptc::PreparedOperand> op;
    std::size_t bytes;
  };

  void drop(std::list<Entry>::iterator it);

  OperandCacheConfig cfg_;
  OperandCacheStats stats_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
};

}  // namespace pdac::nn
