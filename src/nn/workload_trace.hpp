// workload_trace.hpp — GEMM-level operation trace of a transformer
// forward pass, the input to the architecture energy model.
//
// Each traced op records its dimensions, which inference phase it belongs
// to (the x-axis categories of paper Figs. 9–10) and its operand
// residency.  Residency is what differentiates attention from FFN in the
// paper's results: Q·Kᵀ and A·V are *dynamic–dynamic* products whose
// operands were just produced on-chip, so they fetch no weights from
// SRAM, making attention's data-movement share smaller and its relative
// P-DAC savings larger.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "nn/model_config.hpp"

namespace pdac::nn {

/// Inference phase an op is charged to (the figures' x-axis).
enum class OpClass {
  kAttention,  ///< QKV projections, Q·Kᵀ, A·V, output projection
  kFfn,        ///< the two feed-forward GEMMs
  kConv,       ///< im2col'd convolutions (CNN workloads, Albireo context)
  kOther,      ///< layernorm/softmax/GELU handled by the digital unit
};

struct GemmOp {
  std::string label;       ///< e.g. "L3.QK^T"
  OpClass op_class{OpClass::kAttention};
  std::size_t m{}, k{}, n{};
  bool static_weights{};   ///< true when the B operand is a pre-trained
                           ///< weight matrix that must be fetched from SRAM
  std::size_t repeats{1};  ///< per-head ops recorded once with a count
  /// Additional elements that must be streamed from memory regardless of
  /// residency class — e.g. the KV-cache reads of decode-phase attention
  /// (dynamic products whose B operand lives in the cache, not on-chip).
  /// Counted PER REPEAT, like m/k/n: total traffic is this × repeats.
  std::size_t extra_movement_elements{0};

  /// Total extra-movement traffic across all repeats.
  [[nodiscard]] std::size_t total_extra_movement_elements() const {
    return extra_movement_elements * repeats;
  }

  [[nodiscard]] std::size_t macs() const { return m * k * n * repeats; }
  /// Elements of A that must be staged per execution (activations).
  [[nodiscard]] std::size_t activation_elements() const { return (m * k + m * n) * repeats; }
  /// Elements of B fetched from weight memory (0 for dynamic operands).
  [[nodiscard]] std::size_t weight_elements() const {
    return static_weights ? k * n * repeats : 0;
  }
};

/// Element-wise / normalization work charged to the digital vector unit.
struct VectorOp {
  std::string label;
  OpClass op_class{OpClass::kOther};
  std::size_t elements{};
};

struct WorkloadTrace {
  TransformerConfig config;
  std::vector<GemmOp> gemms;
  std::vector<VectorOp> vector_ops;

  [[nodiscard]] std::size_t total_macs() const;
  [[nodiscard]] std::size_t macs(OpClass c) const;
  [[nodiscard]] std::size_t weight_elements(OpClass c) const;
  [[nodiscard]] std::size_t activation_elements(OpClass c) const;
};

/// Trace one full forward pass of the model.
WorkloadTrace trace_forward(const TransformerConfig& cfg);

std::string to_string(OpClass c);

}  // namespace pdac::nn
