#include "nn/backend.hpp"

namespace pdac::nn {

Matrix ReferenceBackend::matmul(const Matrix& a, const Matrix& b) {
  events_.macs += a.rows() * a.cols() * b.cols();
  return matmul_reference(a, b);
}

PhotonicBackend::PhotonicBackend(std::unique_ptr<core::ModulatorDriver> driver,
                                 ptc::GemmConfig cfg)
    : driver_(std::move(driver)), gemm_(*driver_, cfg) {}

Matrix PhotonicBackend::matmul(const Matrix& a, const Matrix& b) {
  ptc::GemmResult r = gemm_.multiply(a, b);
  events_ += r.events;
  return std::move(r.c);
}

std::string PhotonicBackend::name() const { return "photonic/" + driver_->name(); }

std::unique_ptr<GemmBackend> make_reference_backend() {
  return std::make_unique<ReferenceBackend>();
}

std::unique_ptr<GemmBackend> make_photonic_pdac_backend(int bits, ptc::GemmConfig cfg) {
  return std::make_unique<PhotonicBackend>(core::make_pdac_driver(bits), cfg);
}

std::unique_ptr<GemmBackend> make_photonic_ideal_dac_backend(int bits, ptc::GemmConfig cfg) {
  return std::make_unique<PhotonicBackend>(core::make_ideal_dac_driver(bits), cfg);
}

}  // namespace pdac::nn
