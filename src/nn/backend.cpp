#include "nn/backend.hpp"

#include <cmath>

#include "common/simd.hpp"
#include "converters/quantizer.hpp"

namespace pdac::nn {

ptc::GemmConfig fastest_gemm_config(const core::ModulatorDriver& driver, ptc::GemmConfig cfg) {
  // Quant precondition: the driver's encode transfer must land EXACTLY on
  // the quantizer grid for every representable code — the bitwise test
  // PhotonicDotEngine::encode_on_quant_grid runs at construction, probed
  // here without building an engine.  Transcendental transfers (ideal-DAC
  // sin², P-DAC) fail on the first code and fall through to the double
  // tiers.
  const converters::Quantizer quant(driver.bits());
  bool on_grid = true;
  for (std::int32_t c = -quant.max_code(); c <= quant.max_code() && on_grid; ++c) {
    const double v = quant.decode(c);
    if (driver.encode(v) != v) on_grid = false;
  }
  if (on_grid) {
    cfg.path = ptc::ExecutionPath::kKernelQuant;
  } else if (simd::has_fast_path()) {
    cfg.path = ptc::ExecutionPath::kKernelSimd;
  } else {
    cfg.path = ptc::ExecutionPath::kKernel;
  }
  return cfg;
}

Matrix ReferenceBackend::matmul(const Matrix& a, const Matrix& b) {
  events_.macs += a.rows() * a.cols() * b.cols();
  return matmul_reference(a, b);
}

PhotonicBackend::PhotonicBackend(std::unique_ptr<core::ModulatorDriver> driver,
                                 ptc::GemmConfig cfg, OperandCacheConfig cache_cfg,
                                 KvPreparedCacheConfig kv_cfg)
    : driver_(std::move(driver)), gemm_(*driver_, cfg), cache_(cache_cfg),
      kv_cache_(kv_cfg) {}

void PhotonicBackend::fold_guard(const ptc::GuardOutcome& outcome) {
  if (!outcome.enabled) return;
  ++guard_.products;
  guard_.tiles_checked += outcome.tiles_checked;
  guard_.mismatched_tiles += outcome.mismatched_tiles;
  guard_.checksum_events += outcome.checksum_events;
  if (std::isnan(outcome.worst_residual) || outcome.worst_residual > guard_.worst_residual) {
    guard_.worst_residual = outcome.worst_residual;
    guard_.worst_tolerance = outcome.worst_tolerance;
  }
}

Matrix PhotonicBackend::matmul(const Matrix& a, const Matrix& b) {
  ptc::GemmResult r = gemm_.multiply(a, b);
  events_ += r.events;
  fold_guard(r.guard);
  return std::move(r.c);
}

Matrix PhotonicBackend::matmul_cached(const Matrix& a, const Matrix& b,
                                      const WeightHandle& weight) {
  // The driver (and therefore the encode LUT and lane mask) is fixed at
  // construction, so the encoder epoch is a constant 0 here — entries
  // only go stale when the weight's contents change.
  std::shared_ptr<const ptc::PreparedOperand> pb = cache_.lookup(weight.id, weight.version, 0);
  if (pb == nullptr) {
    pb = std::make_shared<const ptc::PreparedOperand>(gemm_.prepare_b(b));
    cache_.insert(weight.id, weight.version, pb);
  }
  ptc::GemmResult r = gemm_.multiply_prepared(a, *pb);
  events_ += r.events;
  fold_guard(r.guard);
  if (r.guard.enabled && !r.guard.clean()) {
    // The driver is immutable, so current and golden encodings coincide
    // and a guarded mismatch can only mean the cached operand's memory
    // was corrupted after insertion.  Repair: drop the entry, re-prepare
    // from the source weight and rerun once (honestly re-charged).
    ++guard_.cache_repairs;
    cache_.erase(weight.id);
    pb = std::make_shared<const ptc::PreparedOperand>(gemm_.prepare_b(b));
    cache_.insert(weight.id, weight.version, pb);
    r = gemm_.multiply_prepared(a, *pb);
    events_ += r.events;
    fold_guard(r.guard);
  }
  return std::move(r.c);
}

std::shared_ptr<ptc::PreparedOperand> PhotonicBackend::obtain_kv(
    const Matrix& kv, const KvHandle& handle) {
  // Driver immutable → encoder epoch is a constant 0, exactly as in
  // matmul_cached; residency only goes stale through the engine-side
  // append preconditions (scale outgrown, shrink, tier mismatch).
  std::shared_ptr<ptc::PreparedOperand> pb = kv_cache_.lookup(handle.id);
  if (pb != nullptr) {
    const bool appended = handle.axis == KvAxis::kCols
                              ? gemm_.append_bt_rows(*pb, kv)
                              : gemm_.append_b_rows(*pb, kv);
    if (appended) {
      kv_cache_.record_append();
      kv_cache_.updated(handle.id);
      return pb;
    }
    kv_cache_.record_rebuild();
  }
  pb = std::make_shared<ptc::PreparedOperand>(
      handle.axis == KvAxis::kCols ? gemm_.prepare_bt(kv) : gemm_.prepare_b(kv));
  kv_cache_.insert(handle.id, pb);
  return pb;
}

Matrix PhotonicBackend::matmul_kv(const Matrix& a, const Matrix& kv,
                                  const KvHandle& handle) {
  std::shared_ptr<ptc::PreparedOperand> pb = obtain_kv(kv, handle);
  ptc::GemmResult r = gemm_.multiply_prepared(a, *pb);
  events_ += r.events;
  fold_guard(r.guard);
  if (r.guard.enabled && !r.guard.clean()) {
    // Same repair as matmul_cached: the driver is immutable, so a
    // guarded mismatch can only mean the resident operand's memory was
    // corrupted — drop it, rebuild from the source history, rerun once.
    ++guard_.cache_repairs;
    kv_cache_.erase(handle.id);
    pb = obtain_kv(kv, handle);
    r = gemm_.multiply_prepared(a, *pb);
    events_ += r.events;
    fold_guard(r.guard);
  }
  return std::move(r.c);
}

std::string PhotonicBackend::name() const { return "photonic/" + driver_->name(); }

std::unique_ptr<GemmBackend> make_reference_backend() {
  return std::make_unique<ReferenceBackend>();
}

std::unique_ptr<GemmBackend> make_photonic_pdac_backend(int bits, ptc::GemmConfig cfg,
                                                        OperandCacheConfig cache_cfg) {
  return std::make_unique<PhotonicBackend>(core::make_pdac_driver(bits), cfg, cache_cfg);
}

std::unique_ptr<GemmBackend> make_photonic_ideal_dac_backend(int bits, ptc::GemmConfig cfg,
                                                             OperandCacheConfig cache_cfg) {
  return std::make_unique<PhotonicBackend>(core::make_ideal_dac_driver(bits), cfg, cache_cfg);
}

}  // namespace pdac::nn
