#include "nn/backend.hpp"

namespace pdac::nn {

Matrix ReferenceBackend::matmul(const Matrix& a, const Matrix& b) {
  events_.macs += a.rows() * a.cols() * b.cols();
  return matmul_reference(a, b);
}

PhotonicBackend::PhotonicBackend(std::unique_ptr<core::ModulatorDriver> driver,
                                 ptc::GemmConfig cfg, OperandCacheConfig cache_cfg)
    : driver_(std::move(driver)), gemm_(*driver_, cfg), cache_(cache_cfg) {}

Matrix PhotonicBackend::matmul(const Matrix& a, const Matrix& b) {
  ptc::GemmResult r = gemm_.multiply(a, b);
  events_ += r.events;
  return std::move(r.c);
}

Matrix PhotonicBackend::matmul_cached(const Matrix& a, const Matrix& b,
                                      const WeightHandle& weight) {
  // The driver (and therefore the encode LUT and lane mask) is fixed at
  // construction, so the encoder epoch is a constant 0 here — entries
  // only go stale when the weight's contents change.
  std::shared_ptr<const ptc::PreparedOperand> pb = cache_.lookup(weight.id, weight.version, 0);
  if (pb == nullptr) {
    pb = std::make_shared<const ptc::PreparedOperand>(gemm_.prepare_b(b));
    cache_.insert(weight.id, weight.version, pb);
  }
  ptc::GemmResult r = gemm_.multiply_prepared(a, *pb);
  events_ += r.events;
  return std::move(r.c);
}

std::string PhotonicBackend::name() const { return "photonic/" + driver_->name(); }

std::unique_ptr<GemmBackend> make_reference_backend() {
  return std::make_unique<ReferenceBackend>();
}

std::unique_ptr<GemmBackend> make_photonic_pdac_backend(int bits, ptc::GemmConfig cfg,
                                                        OperandCacheConfig cache_cfg) {
  return std::make_unique<PhotonicBackend>(core::make_pdac_driver(bits), cfg, cache_cfg);
}

std::unique_ptr<GemmBackend> make_photonic_ideal_dac_backend(int bits, ptc::GemmConfig cfg,
                                                             OperandCacheConfig cache_cfg) {
  return std::make_unique<PhotonicBackend>(core::make_ideal_dac_driver(bits), cfg, cache_cfg);
}

}  // namespace pdac::nn
