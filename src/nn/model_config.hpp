// model_config.hpp — transformer model shapes for the paper's workloads.
//
// The energy evaluation (paper Figs. 9–10) depends only on layer
// *dimensions*, so configs carry exactly those: BERT-base with sequence
// length 128 and DeiT-base on ImageNet-1K 224×224 (196 patch tokens +
// 1 class token = 197).  Reduced "tiny" shapes support the functional
// accuracy experiments, which run real numerics through the simulated
// photonic core.
#pragma once

#include <cstddef>
#include <string>

namespace pdac::nn {

struct TransformerConfig {
  std::string name{"transformer"};
  std::size_t layers{12};
  std::size_t d_model{768};
  std::size_t heads{12};
  std::size_t d_ff{3072};
  std::size_t seq_len{128};

  [[nodiscard]] std::size_t d_head() const { return d_model / heads; }

  /// MACs of one full forward pass (all GEMMs; element-wise ops excluded).
  [[nodiscard]] std::size_t total_macs() const;
  /// MACs in the attention block (QKV + scores + A·V + output projection).
  [[nodiscard]] std::size_t attention_macs() const;
  /// MACs in the feed-forward block.
  [[nodiscard]] std::size_t ffn_macs() const;
};

/// BERT-base, sequence length 128 (paper Fig. 9).
TransformerConfig bert_base(std::size_t seq_len = 128);
/// DeiT-base, 197 tokens (paper Fig. 10).
TransformerConfig deit_base();
/// Small shape for functional (numerics-through-optics) experiments.
TransformerConfig tiny_transformer(std::size_t seq_len = 16, std::size_t d_model = 64,
                                   std::size_t heads = 4, std::size_t layers = 2);

}  // namespace pdac::nn
