#include "nn/model_config.hpp"

namespace pdac::nn {

std::size_t TransformerConfig::attention_macs() const {
  const std::size_t qkv = 3 * seq_len * d_model * d_model;
  const std::size_t scores = heads * seq_len * d_head() * seq_len;  // Q·Kᵀ
  const std::size_t weighted = heads * seq_len * seq_len * d_head();  // A·V
  const std::size_t proj = seq_len * d_model * d_model;
  return layers * (qkv + scores + weighted + proj);
}

std::size_t TransformerConfig::ffn_macs() const {
  return layers * (seq_len * d_model * d_ff + seq_len * d_ff * d_model);
}

std::size_t TransformerConfig::total_macs() const { return attention_macs() + ffn_macs(); }

TransformerConfig bert_base(std::size_t seq_len) {
  TransformerConfig c;
  c.name = "BERT-base";
  c.layers = 12;
  c.d_model = 768;
  c.heads = 12;
  c.d_ff = 3072;
  c.seq_len = seq_len;
  return c;
}

TransformerConfig deit_base() {
  TransformerConfig c;
  c.name = "DeiT-base";
  c.layers = 12;
  c.d_model = 768;
  c.heads = 12;
  c.d_ff = 3072;
  c.seq_len = 197;  // 196 patches of a 224×224 image + class token
  return c;
}

TransformerConfig tiny_transformer(std::size_t seq_len, std::size_t d_model, std::size_t heads,
                                   std::size_t layers) {
  TransformerConfig c;
  c.name = "tiny";
  c.layers = layers;
  c.d_model = d_model;
  c.heads = heads;
  c.d_ff = 4 * d_model;
  c.seq_len = seq_len;
  return c;
}

}  // namespace pdac::nn
