// backend.hpp — pluggable GEMM execution for the transformer stack.
//
// Layers (linear, attention, encoder_layer) call an abstract backend so
// the same model can run on the double-precision reference, the photonic
// core with ideal-DAC drivers, or the photonic core with P-DACs — which
// is exactly the comparison the accuracy ablations make.  Backends
// accumulate hardware event counts across every product they perform.
//
// Every photonic backend routes through the tile-parallel GEMM engine
// (gemm_engine.hpp): pass a GemmConfig with `threads != 1` (e.g. via
// parallel_gemm_config) to spread tile simulation across cores — results
// are bit-identical at any thread count, so accuracy experiments can
// always run wide.
#pragma once

#include <memory>
#include <string>

#include "common/matrix.hpp"
#include "core/modulator_driver.hpp"
#include "ptc/event_counter.hpp"
#include "ptc/gemm_engine.hpp"

namespace pdac::nn {

class GemmBackend {
 public:
  virtual ~GemmBackend() = default;

  [[nodiscard]] virtual Matrix matmul(const Matrix& a, const Matrix& b) = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] const ptc::EventCounter& events() const { return events_; }
  void reset_events() { events_ = {}; }

 protected:
  ptc::EventCounter events_;
};

/// Exact double-precision execution (ground truth).
class ReferenceBackend final : public GemmBackend {
 public:
  [[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b) override;
  [[nodiscard]] std::string name() const override { return "reference"; }
};

/// Execution through the simulated photonic tensor core; owns its
/// modulator driver.
class PhotonicBackend final : public GemmBackend {
 public:
  PhotonicBackend(std::unique_ptr<core::ModulatorDriver> driver, ptc::GemmConfig cfg);

  [[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const core::ModulatorDriver& driver() const { return *driver_; }

 private:
  std::unique_ptr<core::ModulatorDriver> driver_;
  ptc::PhotonicGemm gemm_;
};

/// Convenience factories for the three standard configurations.
std::unique_ptr<GemmBackend> make_reference_backend();
std::unique_ptr<GemmBackend> make_photonic_pdac_backend(int bits,
                                                        ptc::GemmConfig cfg = {});
std::unique_ptr<GemmBackend> make_photonic_ideal_dac_backend(int bits,
                                                             ptc::GemmConfig cfg = {});

/// GemmConfig with the tile dispatch widened to `threads` simulation
/// workers (0 = auto-detect); hand the result to the photonic factories
/// to run layer-scale traces tile-parallel.
[[nodiscard]] inline ptc::GemmConfig parallel_gemm_config(std::size_t threads,
                                                          ptc::GemmConfig cfg = {}) {
  cfg.threads = threads;
  return cfg;
}

}  // namespace pdac::nn
