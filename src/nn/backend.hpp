// backend.hpp — pluggable GEMM execution for the transformer stack.
//
// Layers call an abstract backend so the same model can run on the
// double-precision reference, the photonic core with ideal-DAC drivers,
// or the photonic core with P-DACs — which is exactly the comparison the
// accuracy ablations make.  Backends accumulate hardware event counts
// across every product they perform.
#pragma once

#include <memory>
#include <string>

#include "common/matrix.hpp"
#include "core/modulator_driver.hpp"
#include "ptc/event_counter.hpp"
#include "ptc/gemm_engine.hpp"

namespace pdac::nn {

class GemmBackend {
 public:
  virtual ~GemmBackend() = default;

  [[nodiscard]] virtual Matrix matmul(const Matrix& a, const Matrix& b) = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] const ptc::EventCounter& events() const { return events_; }
  void reset_events() { events_ = {}; }

 protected:
  ptc::EventCounter events_;
};

/// Exact double-precision execution (ground truth).
class ReferenceBackend final : public GemmBackend {
 public:
  [[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b) override;
  [[nodiscard]] std::string name() const override { return "reference"; }
};

/// Execution through the simulated photonic tensor core; owns its
/// modulator driver.
class PhotonicBackend final : public GemmBackend {
 public:
  PhotonicBackend(std::unique_ptr<core::ModulatorDriver> driver, ptc::GemmConfig cfg);

  [[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const core::ModulatorDriver& driver() const { return *driver_; }

 private:
  std::unique_ptr<core::ModulatorDriver> driver_;
  ptc::PhotonicGemm gemm_;
};

/// Convenience factories for the three standard configurations.
std::unique_ptr<GemmBackend> make_reference_backend();
std::unique_ptr<GemmBackend> make_photonic_pdac_backend(int bits,
                                                        ptc::GemmConfig cfg = {});
std::unique_ptr<GemmBackend> make_photonic_ideal_dac_backend(int bits,
                                                             ptc::GemmConfig cfg = {});

}  // namespace pdac::nn
