// backend.hpp — pluggable GEMM execution for the transformer stack.
//
// Layers (linear, attention, encoder_layer) call an abstract backend so
// the same model can run on the double-precision reference, the photonic
// core with ideal-DAC drivers, or the photonic core with P-DACs — which
// is exactly the comparison the accuracy ablations make.  Backends
// accumulate hardware event counts across every product they perform.
//
// Every photonic backend routes through the tile-parallel GEMM engine
// (gemm_engine.hpp): pass a GemmConfig with `threads != 1` (e.g. via
// parallel_gemm_config) to spread tile simulation across cores — results
// are bit-identical at any thread count, so accuracy experiments can
// always run wide.
//
// Weight-stationary execution (DESIGN.md §10): layers route products
// against *static* operands through matmul_cached with a WeightHandle,
// letting backends reuse a prepared (transposed/normalized/encoded)
// B-side across forwards — identical results, one prepare pass instead
// of one per token.  Activation×activation products (attention scores
// and context) keep using plain matmul and are never cached.
//
// KV-stationary execution (DESIGN.md §17): decode-phase attention's
// dynamic operands (K, V) are not static, but they only ever GROW —
// one row per token.  matmul_kv takes a KvHandle naming the growing
// operand and its axis; caching backends keep the prepared encoding
// resident (KvPreparedCache) and extend it in place with the ptc
// append operations, turning the per-token prepare cost from O(t) to
// O(1) while staying bit-identical to the from-scratch build.
#pragma once

#include <memory>
#include <string>

#include "common/matrix.hpp"
#include "core/modulator_driver.hpp"
#include "nn/kv_cache.hpp"
#include "nn/operand_cache.hpp"
#include "ptc/event_counter.hpp"
#include "ptc/gemm_engine.hpp"

namespace pdac::nn {

/// Aggregated ABFT guard verdicts across every product a backend ran
/// with GemmConfig::guard enabled (DESIGN.md §12).  On the immutable
/// PhotonicBackend driver a mismatch can only mean a corrupted cached
/// operand, which matmul_cached auto-repairs (re-prepare + rerun once,
/// counted in cache_repairs).
struct GuardStats {
  std::size_t products{0};
  std::size_t tiles_checked{0};
  std::size_t mismatched_tiles{0};
  std::size_t cache_repairs{0};
  double worst_residual{0.0};
  double worst_tolerance{0.0};
  ptc::EventCounter checksum_events;  ///< spare checksum-lane charge
};

class GemmBackend {
 public:
  virtual ~GemmBackend() = default;

  [[nodiscard]] virtual Matrix matmul(const Matrix& a, const Matrix& b) = 0;

  /// Product whose B operand is a registered weight (stable identity +
  /// content version).  Backends with an operand cache reuse prepared
  /// encodings across calls; results are bit-identical to matmul(a, b).
  /// The default simply forwards, so reference execution is unchanged.
  [[nodiscard]] virtual Matrix matmul_cached(const Matrix& a, const Matrix& b,
                                             const WeightHandle&) {
    return matmul(a, b);
  }

  /// Product against a GROWING dynamic operand (decode-phase K or V).
  /// `kv` holds the full history so far; `handle` names the sequence and
  /// the growth axis (kCols: C = a·kvᵀ, scores; kRows: C = a·kv,
  /// context).  The caller promises rows already passed under this id
  /// are unchanged — backends may then serve the product from a resident
  /// prepared operand extended in place (bit-identical to from-scratch).
  /// The default computes the product directly, so reference execution
  /// and non-caching backends need no KV awareness.
  [[nodiscard]] virtual Matrix matmul_kv(const Matrix& a, const Matrix& kv,
                                         const KvHandle& handle) {
    return handle.axis == KvAxis::kCols ? matmul(a, kv.transposed())
                                        : matmul(a, kv);
  }

  /// Retire a sequence's resident KV state (no-op without a cache).
  virtual void release_kv(std::uint64_t /*id*/) {}

  [[nodiscard]] virtual std::string name() const = 0;

  /// The backend's operand cache, for stats reporting (nullptr when the
  /// backend does not cache).
  [[nodiscard]] virtual const OperandCache* operand_cache() const { return nullptr; }

  /// The backend's KV prepared-operand cache (nullptr when the backend
  /// serves matmul_kv without caching).
  [[nodiscard]] virtual const KvPreparedCache* kv_cache() const { return nullptr; }

  /// Aggregated ABFT guard verdicts (nullptr when the backend never
  /// guards — the reference backend, or a photonic one with guard off).
  [[nodiscard]] virtual const GuardStats* guard_stats() const { return nullptr; }

  [[nodiscard]] const ptc::EventCounter& events() const { return events_; }
  void reset_events() { events_ = {}; }

 protected:
  ptc::EventCounter events_;
};

/// Exact double-precision execution (ground truth).
class ReferenceBackend final : public GemmBackend {
 public:
  [[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b) override;
  [[nodiscard]] std::string name() const override { return "reference"; }
};

/// Execution through the simulated photonic tensor core; owns its
/// modulator driver and an operand cache for weight-stationary reuse
/// (the driver is immutable after construction, so cached encodings
/// only go stale when a weight's contents change).
class PhotonicBackend final : public GemmBackend {
 public:
  PhotonicBackend(std::unique_ptr<core::ModulatorDriver> driver, ptc::GemmConfig cfg,
                  OperandCacheConfig cache_cfg = {},
                  KvPreparedCacheConfig kv_cfg = {});

  [[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b) override;
  [[nodiscard]] Matrix matmul_cached(const Matrix& a, const Matrix& b,
                                     const WeightHandle& weight) override;
  /// KV products through the prepared path: fresh sequences prepare once
  /// (prepare_bt for kCols — no transpose copy — or prepare_b for kRows);
  /// later steps extend the resident operand in place via append_bt_rows /
  /// append_b_rows.  An append the engine refuses (scale outgrown,
  /// shrink, tier mismatch) falls back to a counted rebuild.  Outputs and
  /// events are bit-identical to the unprepared default at every length.
  [[nodiscard]] Matrix matmul_kv(const Matrix& a, const Matrix& kv,
                                 const KvHandle& handle) override;
  void release_kv(std::uint64_t id) override { kv_cache_.erase(id); }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const core::ModulatorDriver& driver() const { return *driver_; }
  [[nodiscard]] const OperandCache* operand_cache() const override { return &cache_; }
  [[nodiscard]] OperandCache& cache() { return cache_; }
  [[nodiscard]] const KvPreparedCache* kv_cache() const override { return &kv_cache_; }
  [[nodiscard]] const GuardStats* guard_stats() const override {
    return gemm_.config().guard.enabled ? &guard_ : nullptr;
  }

 private:
  void fold_guard(const ptc::GuardOutcome& outcome);
  [[nodiscard]] std::shared_ptr<ptc::PreparedOperand> obtain_kv(
      const Matrix& kv, const KvHandle& handle);

  std::unique_ptr<core::ModulatorDriver> driver_;
  ptc::PhotonicGemm gemm_;
  OperandCache cache_;
  KvPreparedCache kv_cache_;
  GuardStats guard_;
};

/// Convenience factories for the three standard configurations.
std::unique_ptr<GemmBackend> make_reference_backend();
std::unique_ptr<GemmBackend> make_photonic_pdac_backend(int bits,
                                                        ptc::GemmConfig cfg = {},
                                                        OperandCacheConfig cache_cfg = {});
std::unique_ptr<GemmBackend> make_photonic_ideal_dac_backend(int bits,
                                                             ptc::GemmConfig cfg = {},
                                                             OperandCacheConfig cache_cfg = {});

/// GemmConfig with the tile dispatch widened to `threads` simulation
/// workers (0 = auto-detect); hand the result to the photonic factories
/// to run layer-scale traces tile-parallel.
[[nodiscard]] inline ptc::GemmConfig parallel_gemm_config(std::size_t threads,
                                                          ptc::GemmConfig cfg = {}) {
  cfg.threads = threads;
  return cfg;
}

/// GemmConfig pinned to the device-graph execution path: every dot runs
/// through the full WdmField/device-object chain instead of the fused
/// flat-array kernel (ptc/kernel.hpp).  Results are bit-identical to the
/// default kernel path — use this to cross-check the kernel against the
/// authoritative device simulation, or when instrumenting the device
/// objects themselves.
[[nodiscard]] inline ptc::GemmConfig device_graph_gemm_config(ptc::GemmConfig cfg = {}) {
  cfg.path = ptc::ExecutionPath::kDeviceGraph;
  return cfg;
}

/// GemmConfig pinned to the fused kernel's SIMD fast tier
/// (ptc/kernel.hpp run_tile_fast): explicit 4/8-wide blocked reductions
/// via common/simd.hpp.  Event counts stay field-for-field identical to
/// the scalar kernel; outputs are tolerance-banded (reassociated
/// arithmetic) rather than bit-exact, inside the ABFT guard band.  Use
/// for throughput-bound sweeps; keep the default kKernel path when
/// bit-exactness against the device graph matters.
[[nodiscard]] inline ptc::GemmConfig simd_gemm_config(ptc::GemmConfig cfg = {}) {
  cfg.path = ptc::ExecutionPath::kKernelSimd;
  return cfg;
}

/// GemmConfig pinned to the fused kernel's integer tier
/// (ptc/kernel.hpp run_tile_quant, DESIGN.md §15): operands carried as
/// int16 quantizer codes, reductions as EXACT int16×int16→int64 dots,
/// scale + dark applied once at readout.  Valid only for engines whose
/// encode LUT sits bitwise on the quantizer grid (the
/// core::BitTrueDacDriver chain) — PhotonicGemm construction rejects the
/// path otherwise; use fastest_gemm_config to probe instead of pinning.
/// Event counts stay field-for-field identical to the scalar kernel and
/// outputs sit in the same guard band as the SIMD tier, at roughly a
/// quarter of its operand bytes per tile.
[[nodiscard]] inline ptc::GemmConfig quant_gemm_config(ptc::GemmConfig cfg = {}) {
  cfg.path = ptc::ExecutionPath::kKernelQuant;
  return cfg;
}

/// Resolve the fastest execution path this (driver, config) pair can
/// legally run — the quant → simd → kernel ladder of DESIGN.md §15:
/// kKernelQuant iff the driver's encode transfer lies bitwise on the
/// quantizer grid at cfg.dot.bits (probed code-by-code, the same
/// precondition PhotonicGemm enforces), else kKernelSimd iff the CPU has
/// the wide path, else the scalar kernel.  The returned config is
/// `cfg` with only `path` rewritten, so guard/threads/array knobs pass
/// through untouched.
[[nodiscard]] ptc::GemmConfig fastest_gemm_config(const core::ModulatorDriver& driver,
                                                  ptc::GemmConfig cfg = {});

/// GemmConfig with the ABFT checksum guard switched on (abft.hpp) —
/// every product verifies its tiles against digital references and the
/// verdicts surface through GemmBackend::guard_stats().  Pass a
/// noise-calibrated band (ptc::calibrate_guard_sigma) when the dot
/// engine runs with ADC readout or detector noise enabled.
[[nodiscard]] inline ptc::GemmConfig guarded_gemm_config(ptc::GuardConfig guard = {},
                                                         ptc::GemmConfig cfg = {}) {
  guard.enabled = true;
  cfg.guard = guard;
  return cfg;
}

}  // namespace pdac::nn
