#include "nn/cnn_trace.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace pdac::nn {

std::size_t CnnConfig::total_macs() const {
  return trace_cnn_forward(*this).total_macs();
}

WorkloadTrace trace_cnn_forward(const CnnConfig& cfg) {
  PDAC_REQUIRE(!cfg.convs.empty() || !cfg.fc.empty(), "trace_cnn_forward: empty network");
  WorkloadTrace t;
  t.config.name = cfg.name;

  std::size_t size = cfg.input_size;
  std::size_t channels = cfg.input_channels;
  for (std::size_t i = 0; i < cfg.convs.size(); ++i) {
    const ConvLayer& layer = cfg.convs[i];
    PDAC_REQUIRE(layer.in_channels == channels,
                 "trace_cnn_forward: channel mismatch at " + layer.name);
    const std::size_t out = layer.out_size(size);
    const std::size_t m = out * out;                               // output pixels
    const std::size_t k = layer.in_channels * layer.kernel * layer.kernel;
    const std::size_t n = layer.out_channels;
    t.gemms.push_back({layer.name, OpClass::kConv, m, k, n, /*static_weights=*/true, 1, 0});
    t.vector_ops.push_back({layer.name + ".relu", OpClass::kOther, m * n});

    size = out;
    channels = layer.out_channels;
    if (std::find(cfg.pool_after.begin(), cfg.pool_after.end(), i) !=
        cfg.pool_after.end()) {
      t.vector_ops.push_back({layer.name + ".pool", OpClass::kOther, m * n});
      size /= 2;
    }
  }

  for (std::size_t i = 0; i < cfg.fc.size(); ++i) {
    const auto& [in, out] = cfg.fc[i];
    t.gemms.push_back({"fc" + std::to_string(i), OpClass::kFfn, 1, in, out, true, 1, 0});
    t.vector_ops.push_back({"fc" + std::to_string(i) + ".act", OpClass::kOther, out});
  }
  return t;
}

CnnConfig vgg11_like() {
  CnnConfig cfg;
  cfg.name = "VGG11-like";
  cfg.input_size = 224;
  cfg.input_channels = 3;
  cfg.convs = {
      {"conv1", 3, 64}, {"conv2", 64, 128},   {"conv3", 128, 256}, {"conv4", 256, 256},
      {"conv5", 256, 512}, {"conv6", 512, 512}, {"conv7", 512, 512}, {"conv8", 512, 512},
  };
  cfg.pool_after = {0, 1, 3, 5, 7};
  cfg.fc = {{512 * 7 * 7, 4096}, {4096, 4096}, {4096, 1000}};
  return cfg;
}

CnnConfig tiny_cnn(std::size_t input_size) {
  CnnConfig cfg;
  cfg.name = "tiny-cnn";
  cfg.input_size = input_size;
  cfg.input_channels = 3;
  cfg.convs = {{"conv1", 3, 8}, {"conv2", 8, 16}};
  cfg.pool_after = {1};
  cfg.fc = {{16 * (input_size / 2) * (input_size / 2), 10}};
  return cfg;
}

}  // namespace pdac::nn
