#include "nn/attention.hpp"

#include <cmath>

#include "common/require.hpp"
#include "nn/ops.hpp"

namespace pdac::nn {

MultiHeadAttention::MultiHeadAttention(std::size_t d_model, std::size_t heads)
    : d_model_(d_model),
      heads_(heads),
      q_(d_model, d_model),
      k_(d_model, d_model),
      v_(d_model, d_model),
      o_(d_model, d_model) {
  PDAC_REQUIRE(heads >= 1 && d_model % heads == 0,
               "MultiHeadAttention: d_model must be divisible by heads");
}

void MultiHeadAttention::init_random(Rng& rng) {
  q_.init_random(rng);
  k_.init_random(rng);
  v_.init_random(rng);
  o_.init_random(rng);
}

void MultiHeadAttention::head_slice_into(const Matrix& m, std::size_t h,
                                         Matrix& dst) const {
  const std::size_t dh = d_head();
  dst.resize(m.rows(), dh);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < dh; ++c) dst(r, c) = m(r, h * dh + c);
  }
}

Matrix MultiHeadAttention::forward(const Matrix& x, GemmBackend& backend) const {
  PDAC_REQUIRE(x.cols() == d_model_, "MultiHeadAttention: input width mismatch");
  const Matrix q = q_.forward(x, backend);
  const Matrix k = k_.forward(x, backend);
  const Matrix v = v_.forward(x, backend);

  const std::size_t seq = x.rows();
  const std::size_t dh = d_head();
  Matrix context(seq, d_model_);
  for (std::size_t h = 0; h < heads_; ++h) {
    head_slice_into(q, h, qh_scratch_);
    head_slice_into(k, h, kh_scratch_);
    head_slice_into(v, h, vh_scratch_);
    kht_scratch_.resize(dh, seq);
    for (std::size_t r = 0; r < seq; ++r) {
      for (std::size_t c = 0; c < dh; ++c) kht_scratch_(c, r) = kh_scratch_(r, c);
    }

    // Dynamic–dynamic products: scores = Qh·Khᵀ / sqrt(dh), then A·Vh.
    Matrix scores = backend.matmul(qh_scratch_, kht_scratch_);
    scale_inplace(scores, 1.0 / std::sqrt(static_cast<double>(dh)));
    softmax_rows(scores);
    const Matrix ctx_h = backend.matmul(scores, vh_scratch_);

    for (std::size_t r = 0; r < seq; ++r) {
      for (std::size_t c = 0; c < dh; ++c) context(r, h * dh + c) = ctx_h(r, c);
    }
  }
  return o_.forward(context, backend);
}

AttentionKvState MultiHeadAttention::make_kv_state() const {
  AttentionKvState kv;
  kv.k_heads.assign(heads_, Matrix(0, d_head()));
  kv.v_heads.assign(heads_, Matrix(0, d_head()));
  kv.score_handles.reserve(heads_);
  kv.ctx_handles.reserve(heads_);
  for (std::size_t h = 0; h < heads_; ++h) {
    kv.score_handles.push_back(KvHandle{next_kv_id(), KvAxis::kCols});
    kv.ctx_handles.push_back(KvHandle{next_kv_id(), KvAxis::kRows});
  }
  return kv;
}

void MultiHeadAttention::release_kv_state(const AttentionKvState& kv,
                                          GemmBackend& backend) {
  for (const KvHandle& handle : kv.score_handles) backend.release_kv(handle.id);
  for (const KvHandle& handle : kv.ctx_handles) backend.release_kv(handle.id);
}

Matrix MultiHeadAttention::forward_decode(const Matrix& x, GemmBackend& backend,
                                          AttentionKvState& kv,
                                          KvDecodeMode mode) const {
  PDAC_REQUIRE(x.rows() == 1 && x.cols() == d_model_,
               "forward_decode: expected one (1 × d_model) token");
  PDAC_REQUIRE(kv.k_heads.size() == heads_ && kv.v_heads.size() == heads_,
               "forward_decode: KV state head count mismatch");
  const Matrix q = q_.forward(x, backend);
  const Matrix k = k_.forward(x, backend);
  const Matrix v = v_.forward(x, backend);

  const std::size_t dh = d_head();
  const std::size_t t = kv.tokens + 1;
  Matrix context(1, d_model_);
  for (std::size_t h = 0; h < heads_; ++h) {
    // Append this token's K/V rows to the head's history (cols constant,
    // so resize preserves the existing rows).
    Matrix& kh = kv.k_heads[h];
    Matrix& vh = kv.v_heads[h];
    kh.resize(t, dh);
    vh.resize(t, dh);
    for (std::size_t c = 0; c < dh; ++c) {
      kh(t - 1, c) = k(0, h * dh + c);
      vh(t - 1, c) = v(0, h * dh + c);
    }
    head_slice_into(q, h, qh_scratch_);

    Matrix scores;
    if (mode == KvDecodeMode::kPrepared) {
      scores = backend.matmul_kv(qh_scratch_, kh, kv.score_handles[h]);
    } else {
      kht_scratch_.resize(dh, t);
      for (std::size_t r = 0; r < t; ++r) {
        for (std::size_t c = 0; c < dh; ++c) kht_scratch_(c, r) = kh(r, c);
      }
      scores = backend.matmul(qh_scratch_, kht_scratch_);
    }
    scale_inplace(scores, 1.0 / std::sqrt(static_cast<double>(dh)));
    softmax_rows(scores);
    const Matrix ctx_h = mode == KvDecodeMode::kPrepared
                             ? backend.matmul_kv(scores, vh, kv.ctx_handles[h])
                             : backend.matmul(scores, vh);
    for (std::size_t c = 0; c < dh; ++c) context(0, h * dh + c) = ctx_h(0, c);
  }
  kv.tokens = t;
  return o_.forward(context, backend);
}

}  // namespace pdac::nn
