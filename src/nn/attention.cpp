#include "nn/attention.hpp"

#include <cmath>

#include "common/require.hpp"
#include "nn/ops.hpp"

namespace pdac::nn {

MultiHeadAttention::MultiHeadAttention(std::size_t d_model, std::size_t heads)
    : d_model_(d_model),
      heads_(heads),
      q_(d_model, d_model),
      k_(d_model, d_model),
      v_(d_model, d_model),
      o_(d_model, d_model) {
  PDAC_REQUIRE(heads >= 1 && d_model % heads == 0,
               "MultiHeadAttention: d_model must be divisible by heads");
}

void MultiHeadAttention::init_random(Rng& rng) {
  q_.init_random(rng);
  k_.init_random(rng);
  v_.init_random(rng);
  o_.init_random(rng);
}

Matrix MultiHeadAttention::head_slice(const Matrix& m, std::size_t h) const {
  const std::size_t dh = d_head();
  Matrix s(m.rows(), dh);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < dh; ++c) s(r, c) = m(r, h * dh + c);
  }
  return s;
}

Matrix MultiHeadAttention::forward(const Matrix& x, GemmBackend& backend) const {
  PDAC_REQUIRE(x.cols() == d_model_, "MultiHeadAttention: input width mismatch");
  const Matrix q = q_.forward(x, backend);
  const Matrix k = k_.forward(x, backend);
  const Matrix v = v_.forward(x, backend);

  const std::size_t seq = x.rows();
  const std::size_t dh = d_head();
  Matrix context(seq, d_model_);
  for (std::size_t h = 0; h < heads_; ++h) {
    const Matrix qh = head_slice(q, h);
    const Matrix kh = head_slice(k, h);
    const Matrix vh = head_slice(v, h);

    // Dynamic–dynamic products: scores = Qh·Khᵀ / sqrt(dh), then A·Vh.
    Matrix scores = backend.matmul(qh, kh.transposed());
    scale_inplace(scores, 1.0 / std::sqrt(static_cast<double>(dh)));
    softmax_rows(scores);
    const Matrix ctx_h = backend.matmul(scores, vh);

    for (std::size_t r = 0; r < seq; ++r) {
      for (std::size_t c = 0; c < dh; ++c) context(r, h * dh + c) = ctx_h(r, c);
    }
  }
  return o_.forward(context, backend);
}

}  // namespace pdac::nn
