#include "nn/decode_trace.hpp"

#include "common/require.hpp"

namespace pdac::nn {

WorkloadTrace trace_decode_step(const TransformerConfig& cfg, std::size_t context_len) {
  PDAC_REQUIRE(context_len >= 1, "trace_decode_step: context must be non-empty");
  WorkloadTrace t;
  t.config = cfg;
  const std::size_t d = cfg.d_model;
  const std::size_t h = cfg.heads;
  const std::size_t dh = cfg.d_head();
  const std::size_t ff = cfg.d_ff;
  const std::size_t len = context_len;  // K/V rows attended over (incl. new token)

  for (std::size_t layer = 0; layer < cfg.layers; ++layer) {
    const std::string p = "D" + std::to_string(layer) + ".";
    // Projections for the single new token (GEMVs over static weights).
    t.gemms.push_back({p + "Q-proj", OpClass::kAttention, 1, d, d, true, 1, 0});
    t.gemms.push_back({p + "K-proj", OpClass::kAttention, 1, d, d, true, 1, 0});
    t.gemms.push_back({p + "V-proj", OpClass::kAttention, 1, d, d, true, 1, 0});
    // Scores and context against the cache: dynamic products, but the K
    // and V operands stream from the KV cache — charge that movement.
    t.gemms.push_back({p + "QK^T", OpClass::kAttention, 1, dh, len, false, h,
                       /*extra_movement=*/dh * len});
    t.gemms.push_back({p + "AV", OpClass::kAttention, 1, len, dh, false, h,
                       /*extra_movement=*/len * dh});
    t.gemms.push_back({p + "O-proj", OpClass::kAttention, 1, d, d, true, 1, 0});

    t.gemms.push_back({p + "FFN-up", OpClass::kFfn, 1, d, ff, true, 1, 0});
    t.gemms.push_back({p + "FFN-down", OpClass::kFfn, 1, ff, d, true, 1, 0});

    t.vector_ops.push_back({p + "softmax", OpClass::kOther, h * len});
    t.vector_ops.push_back({p + "gelu", OpClass::kOther, ff});
    t.vector_ops.push_back({p + "layernorm×2", OpClass::kOther, 2 * d});
    t.vector_ops.push_back({p + "residual×2", OpClass::kOther, 2 * d});
    // Writing the new token's K and V rows into the cache.
    t.vector_ops.push_back({p + "kv-append", OpClass::kOther, 2 * d});
  }
  return t;
}

WorkloadTrace trace_decode_step_quantized_kv(const TransformerConfig& cfg,
                                             std::size_t context_len, int operand_bits,
                                             int kv_bits) {
  PDAC_REQUIRE(operand_bits >= 1 && kv_bits >= 1,
               "trace_decode_step_quantized_kv: bit widths must be positive");
  WorkloadTrace t = trace_decode_step(cfg, context_len);
  for (auto& g : t.gemms) {
    // Rescale cache reads to operand-width-equivalent elements.
    g.extra_movement_elements = g.extra_movement_elements *
                                static_cast<std::size_t>(kv_bits) /
                                static_cast<std::size_t>(operand_bits);
  }
  return t;
}

WorkloadTrace trace_decode_step_batched(const TransformerConfig& cfg,
                                        std::size_t context_len, std::size_t batch) {
  PDAC_REQUIRE(batch >= 1, "trace_decode_step_batched: batch must be positive");
  PDAC_REQUIRE(context_len >= 1, "trace_decode_step_batched: context must be non-empty");
  WorkloadTrace t;
  t.config = cfg;
  const std::size_t d = cfg.d_model;
  const std::size_t h = cfg.heads;
  const std::size_t dh = cfg.d_head();
  const std::size_t ff = cfg.d_ff;
  const std::size_t len = context_len;

  for (std::size_t layer = 0; layer < cfg.layers; ++layer) {
    const std::string p = "B" + std::to_string(layer) + ".";
    // Weight GEMMs fuse across the batch: one (batch × d × d) product.
    t.gemms.push_back({p + "Q-proj", OpClass::kAttention, batch, d, d, true, 1, 0});
    t.gemms.push_back({p + "K-proj", OpClass::kAttention, batch, d, d, true, 1, 0});
    t.gemms.push_back({p + "V-proj", OpClass::kAttention, batch, d, d, true, 1, 0});
    // Attention cannot fuse: every sequence attends over its own cache.
    t.gemms.push_back({p + "QK^T", OpClass::kAttention, 1, dh, len, false, h * batch,
                       dh * len});
    t.gemms.push_back({p + "AV", OpClass::kAttention, 1, len, dh, false, h * batch,
                       len * dh});
    t.gemms.push_back({p + "O-proj", OpClass::kAttention, batch, d, d, true, 1, 0});

    t.gemms.push_back({p + "FFN-up", OpClass::kFfn, batch, d, ff, true, 1, 0});
    t.gemms.push_back({p + "FFN-down", OpClass::kFfn, batch, ff, d, true, 1, 0});

    t.vector_ops.push_back({p + "softmax", OpClass::kOther, batch * h * len});
    t.vector_ops.push_back({p + "gelu", OpClass::kOther, batch * ff});
    t.vector_ops.push_back({p + "layernorm×2", OpClass::kOther, 2 * batch * d});
    t.vector_ops.push_back({p + "residual×2", OpClass::kOther, 2 * batch * d});
    t.vector_ops.push_back({p + "kv-append", OpClass::kOther, 2 * batch * d});
  }
  return t;
}

WorkloadTrace trace_generation(const TransformerConfig& cfg, std::size_t prompt_len,
                               std::size_t generated_tokens) {
  PDAC_REQUIRE(prompt_len >= 1, "trace_generation: prompt must be non-empty");
  TransformerConfig prefill_cfg = cfg;
  prefill_cfg.seq_len = prompt_len;
  WorkloadTrace t = trace_forward(prefill_cfg);
  t.config = cfg;
  for (std::size_t i = 0; i < generated_tokens; ++i) {
    const WorkloadTrace step = trace_decode_step(cfg, prompt_len + i + 1);
    t.gemms.insert(t.gemms.end(), step.gemms.begin(), step.gemms.end());
    t.vector_ops.insert(t.vector_ops.end(), step.vector_ops.begin(),
                        step.vector_ops.end());
  }
  return t;
}

std::uint64_t kv_cache_bytes(const TransformerConfig& cfg, std::size_t context_len,
                             int bits) {
  PDAC_REQUIRE(bits >= 1, "kv_cache_bytes: bits must be positive");
  const std::uint64_t elements =
      2ull * cfg.layers * context_len * cfg.d_model;  // K and V
  return elements * static_cast<std::uint64_t>(bits) / 8ull;
}

double arithmetic_intensity(const WorkloadTrace& trace, int bits) {
  PDAC_REQUIRE(bits >= 1, "arithmetic_intensity: bits must be positive");
  std::uint64_t moved_elements = 0;
  for (const auto& g : trace.gemms) {
    moved_elements += g.weight_elements() + (g.static_weights ? g.activation_elements() : 0) +
                      g.total_extra_movement_elements();
  }
  const double bytes =
      static_cast<double>(moved_elements) * static_cast<double>(bits) / 8.0;
  return bytes > 0.0 ? static_cast<double>(trace.total_macs()) / bytes
                     : static_cast<double>(trace.total_macs());
}

}  // namespace pdac::nn
