#include "nn/encoder_layer.hpp"

#include "nn/ops.hpp"

namespace pdac::nn {

EncoderLayer::EncoderLayer(std::size_t d_model, std::size_t heads, std::size_t d_ff)
    : mha_(d_model, heads),
      ffn_up_(d_model, d_ff),
      ffn_down_(d_ff, d_model),
      ln1_gamma_(d_model, 1.0),
      ln1_beta_(d_model, 0.0),
      ln2_gamma_(d_model, 1.0),
      ln2_beta_(d_model, 0.0) {}

void EncoderLayer::init_random(Rng& rng) {
  mha_.init_random(rng);
  ffn_up_.init_random(rng);
  ffn_down_.init_random(rng);
}

Matrix EncoderLayer::forward(const Matrix& x, GemmBackend& backend) const {
  Matrix normed = x;
  layer_norm(normed, ln1_gamma_, ln1_beta_);
  Matrix out = x;
  add_inplace(out, mha_.forward(normed, backend));

  Matrix normed2 = out;
  layer_norm(normed2, ln2_gamma_, ln2_beta_);
  Matrix hidden = ffn_up_.forward(normed2, backend);
  gelu(hidden);
  add_inplace(out, ffn_down_.forward(hidden, backend));
  return out;
}

}  // namespace pdac::nn
