#include "nn/linear.hpp"

#include <cmath>

#include "common/require.hpp"
#include "nn/ops.hpp"

namespace pdac::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features)
    : weight_(in_features, out_features), bias_(out_features, 0.0) {
  PDAC_REQUIRE(in_features >= 1 && out_features >= 1, "Linear: features must be positive");
}

void Linear::init_random(Rng& rng) {
  const double bound = std::sqrt(6.0 / static_cast<double>(weight_.rows() + weight_.cols()));
  for (auto& w : weight_.data()) w = rng.uniform(-bound, bound);
  for (auto& b : bias_) b = rng.uniform(-0.01, 0.01);
}

Matrix Linear::forward(const Matrix& x, GemmBackend& backend) const {
  PDAC_REQUIRE(x.cols() == weight_.rows(), "Linear: input width mismatch");
  Matrix y = backend.matmul(x, weight_);
  add_bias(y, bias_);
  return y;
}

}  // namespace pdac::nn
