#include "nn/linear.hpp"

#include <atomic>
#include <cmath>

#include "common/require.hpp"
#include "nn/ops.hpp"

namespace pdac::nn {

std::uint64_t Linear::next_stamp() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

Linear::Linear(std::size_t in_features, std::size_t out_features)
    : weight_(in_features, out_features),
      bias_(out_features, 0.0),
      id_(next_stamp()),
      version_(next_stamp()) {
  PDAC_REQUIRE(in_features >= 1 && out_features >= 1, "Linear: features must be positive");
}

Linear::Linear(const Linear& other)
    : weight_(other.weight_),
      bias_(other.bias_),
      id_(next_stamp()),
      version_(next_stamp()) {}

Linear& Linear::operator=(const Linear& other) {
  weight_ = other.weight_;
  bias_ = other.bias_;
  version_ = next_stamp();  // keep our identity; contents changed
  return *this;
}

void Linear::init_random(Rng& rng) {
  const double bound = std::sqrt(6.0 / static_cast<double>(weight_.rows() + weight_.cols()));
  for (auto& w : weight_.data()) w = rng.uniform(-bound, bound);
  for (auto& b : bias_) b = rng.uniform(-0.01, 0.01);
  version_ = next_stamp();
}

Matrix Linear::forward(const Matrix& x, GemmBackend& backend) const {
  PDAC_REQUIRE(x.cols() == weight_.rows(), "Linear: input width mismatch");
  Matrix y = backend.matmul_cached(x, weight_, weight_handle());
  add_bias(y, bias_);
  return y;
}

}  // namespace pdac::nn
