// encoder_layer.hpp — one pre-norm transformer encoder block:
//   x = x + MHA(LN(x));  x = x + FFN(LN(x)),  FFN = GELU(x·W₁)·W₂.
#pragma once

#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "nn/attention.hpp"
#include "nn/backend.hpp"
#include "nn/linear.hpp"

namespace pdac::nn {

class EncoderLayer {
 public:
  EncoderLayer(std::size_t d_model, std::size_t heads, std::size_t d_ff);

  void init_random(Rng& rng);

  [[nodiscard]] Matrix forward(const Matrix& x, GemmBackend& backend) const;

  MultiHeadAttention& attention() { return mha_; }
  Linear& ffn_up() { return ffn_up_; }
  Linear& ffn_down() { return ffn_down_; }

 private:
  MultiHeadAttention mha_;
  Linear ffn_up_;
  Linear ffn_down_;
  std::vector<double> ln1_gamma_, ln1_beta_;
  std::vector<double> ln2_gamma_, ln2_beta_;
};

}  // namespace pdac::nn
