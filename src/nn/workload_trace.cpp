#include "nn/workload_trace.hpp"

namespace pdac::nn {

std::size_t WorkloadTrace::total_macs() const {
  std::size_t sum = 0;
  for (const auto& g : gemms) sum += g.macs();
  return sum;
}

std::size_t WorkloadTrace::macs(OpClass c) const {
  std::size_t sum = 0;
  for (const auto& g : gemms) {
    if (g.op_class == c) sum += g.macs();
  }
  return sum;
}

std::size_t WorkloadTrace::weight_elements(OpClass c) const {
  std::size_t sum = 0;
  for (const auto& g : gemms) {
    if (g.op_class == c) sum += g.weight_elements();
  }
  return sum;
}

std::size_t WorkloadTrace::activation_elements(OpClass c) const {
  std::size_t sum = 0;
  for (const auto& g : gemms) {
    if (g.op_class == c) sum += g.activation_elements();
  }
  return sum;
}

WorkloadTrace trace_forward(const TransformerConfig& cfg) {
  WorkloadTrace t;
  t.config = cfg;
  const std::size_t s = cfg.seq_len;
  const std::size_t d = cfg.d_model;
  const std::size_t h = cfg.heads;
  const std::size_t dh = cfg.d_head();
  const std::size_t ff = cfg.d_ff;

  for (std::size_t layer = 0; layer < cfg.layers; ++layer) {
    const std::string p = "L" + std::to_string(layer) + ".";
    // Attention: three projections with static weights…
    t.gemms.push_back({p + "Q-proj", OpClass::kAttention, s, d, d, true, 1});
    t.gemms.push_back({p + "K-proj", OpClass::kAttention, s, d, d, true, 1});
    t.gemms.push_back({p + "V-proj", OpClass::kAttention, s, d, d, true, 1});
    // …two dynamic–dynamic products per head (no weight fetch)…
    t.gemms.push_back({p + "QK^T", OpClass::kAttention, s, dh, s, false, h});
    t.gemms.push_back({p + "AV", OpClass::kAttention, s, s, dh, false, h});
    // …and the output projection.
    t.gemms.push_back({p + "O-proj", OpClass::kAttention, s, d, d, true, 1});

    // Feed-forward block.
    t.gemms.push_back({p + "FFN-up", OpClass::kFfn, s, d, ff, true, 1});
    t.gemms.push_back({p + "FFN-down", OpClass::kFfn, s, ff, d, true, 1});

    // Digital vector work (softmax, GELU, two layernorms, residuals).
    t.vector_ops.push_back({p + "softmax", OpClass::kOther, h * s * s});
    t.vector_ops.push_back({p + "gelu", OpClass::kOther, s * ff});
    t.vector_ops.push_back({p + "layernorm×2", OpClass::kOther, 2 * s * d});
    t.vector_ops.push_back({p + "residual×2", OpClass::kOther, 2 * s * d});
  }
  return t;
}

std::string to_string(OpClass c) {
  switch (c) {
    case OpClass::kAttention: return "attention";
    case OpClass::kFfn: return "ffn";
    case OpClass::kConv: return "conv";
    case OpClass::kOther: return "other";
  }
  return "?";
}

}  // namespace pdac::nn
