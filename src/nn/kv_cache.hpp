// kv_cache.hpp — per-sequence cache of append-only prepared KV operands
// (DESIGN.md §17).
//
// Decode-phase attention multiplies against operands that GROW one row
// per token: scores = q·Kᵀ (K gains a row, i.e. Kᵀ gains a column) and
// context = a·V (V gains a row on the reduction axis).  Preparing them
// from scratch every step re-normalizes, re-encodes and re-checksums the
// whole history — O(t) redundant work per token, O(t²) per sequence.
// This cache keeps each sequence's ptc::PreparedOperand resident and
// MUTABLE so backends extend it in place with PhotonicGemm::append_* /
// GuardedBackend's guarded appends: O(1) prepare work per token,
// bit-identical to the from-scratch build at every length.
//
// Keying: a KvHandle names one growing operand — a process-unique id
// (next_kv_id) plus the growth axis.  The append-only contract is the
// caller's to uphold: rows already handed in under an id must never
// change (the serving engine keys ids per request; attention keys them
// per AttentionKvState head).  Freshness (epoch, channel packing, scale
// stability) is the BACKEND's to validate per product — entries carry
// their PreparedOperand's own stamps, and a backend that finds an entry
// stale rebuilds and re-inserts (record_rebuild), exactly like a fresh
// sequence.
//
// Accounting mirrors OperandCache: byte-capacity LRU over physical
// resident bytes (appended operands re-account via updated()), explicit
// stats for hits / misses / appends / rebuilds / evictions.  An entry
// larger than the whole capacity is dropped and counted oversized — the
// caller falls back to uncached fresh prepares.
//
// Not thread-safe: backends own one cache each and are driven from one
// thread (the GEMM engine parallelizes internally).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "ptc/gemm_engine.hpp"

namespace pdac::nn {

/// Which axis of the prepared operand grows as the sequence extends.
enum class KvAxis {
  kCols,  ///< B = kvᵀ: C = a·kvᵀ, new kv rows are new OUTPUT columns (scores)
  kRows,  ///< B = kv:  C = a·kv,  new kv rows extend the REDUCTION axis (context)
};

/// Identity of one growing KV operand (sequence × head × product role).
/// id 0 is reserved for uncacheable products.
struct KvHandle {
  std::uint64_t id{0};
  KvAxis axis{KvAxis::kCols};
};

/// Process-unique nonzero KvHandle id.
[[nodiscard]] std::uint64_t next_kv_id();

struct KvPreparedCacheConfig {
  std::size_t capacity_bytes{64ull << 20};  ///< LRU eviction threshold
  bool enabled{true};  ///< false = every lookup misses, nothing is stored
};

struct KvPreparedCacheStats {
  std::uint64_t hits{0};      ///< lookups served from residency
  std::uint64_t misses{0};    ///< lookups with no resident entry
  std::uint64_t appends{0};   ///< products served by an in-place append
  std::uint64_t rebuilds{0};  ///< resident entries rebuilt from scratch (stale)
  std::uint64_t evictions{0};
  std::uint64_t invalidations{0};  ///< explicit erase()/clear() drops
  std::uint64_t oversized_rejects{0};
  std::uint64_t resident_bytes{0};
  std::uint64_t entries{0};
};

class KvPreparedCache {
 public:
  explicit KvPreparedCache(KvPreparedCacheConfig cfg = {});

  /// The resident operand for `id` (LRU-touched), or nullptr.  No
  /// freshness check happens here — the backend validates epoch/packing/
  /// scale itself, because only it knows the current encoder state and
  /// whether an append can bridge the gap.
  [[nodiscard]] std::shared_ptr<ptc::PreparedOperand> lookup(std::uint64_t id);

  /// Store (or replace) an operand, evicting LRU entries over capacity.
  /// id 0 and oversized operands are rejected (counted).
  void insert(std::uint64_t id, std::shared_ptr<ptc::PreparedOperand> op);

  /// Re-account an entry whose operand grew in place (appends change
  /// bytes() without an insert); runs the same eviction sweep.
  void updated(std::uint64_t id);

  /// Drop one sequence's entry if present — sequence retirement, or a
  /// backend refusing an entry it cannot append to or rebuild.
  void erase(std::uint64_t id);

  /// Drop everything (stats kept; resident bytes/entries reset).
  void clear();

  void record_append() { ++stats_.appends; }
  void record_rebuild() { ++stats_.rebuilds; }

  [[nodiscard]] const KvPreparedCacheStats& stats() const { return stats_; }
  [[nodiscard]] const KvPreparedCacheConfig& config() const { return cfg_; }

 private:
  struct Entry {
    std::uint64_t id;
    std::shared_ptr<ptc::PreparedOperand> op;
    std::size_t bytes;
  };

  void drop(std::list<Entry>::iterator it);
  void evict_over_capacity();

  KvPreparedCacheConfig cfg_;
  KvPreparedCacheStats stats_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
};

}  // namespace pdac::nn
