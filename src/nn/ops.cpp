#include "nn/ops.hpp"

#include <algorithm>
#include <cmath>

#include "common/math_utils.hpp"
#include "common/require.hpp"

namespace pdac::nn {

void softmax_rows(Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    auto row = m.row(r);
    const double mx = *std::max_element(row.begin(), row.end());
    double sum = 0.0;
    for (auto& x : row) {
      x = std::exp(x - mx);
      sum += x;
    }
    for (auto& x : row) x /= sum;
  }
}

void gelu(Matrix& m) {
  constexpr double kC = 0.7978845608028654;  // sqrt(2/π)
  for (auto& x : m.data()) {
    x = 0.5 * x * (1.0 + std::tanh(kC * (x + 0.044715 * x * x * x)));
  }
}

void layer_norm(Matrix& m, std::span<const double> gamma, std::span<const double> beta,
                double eps) {
  PDAC_REQUIRE(gamma.size() == m.cols() && beta.size() == m.cols(),
               "layer_norm: gamma/beta must match column count");
  for (std::size_t r = 0; r < m.rows(); ++r) {
    auto row = m.row(r);
    double mean = 0.0;
    for (double x : row) mean += x;
    mean /= static_cast<double>(row.size());
    double var = 0.0;
    for (double x : row) var += (x - mean) * (x - mean);
    var /= static_cast<double>(row.size());
    const double inv = 1.0 / std::sqrt(var + eps);
    for (std::size_t c = 0; c < row.size(); ++c) {
      row[c] = (row[c] - mean) * inv * gamma[c] + beta[c];
    }
  }
}

void add_inplace(Matrix& a, const Matrix& b) {
  PDAC_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(), "add_inplace: shape mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] += b.data()[i];
}

void add_bias(Matrix& m, std::span<const double> bias) {
  PDAC_REQUIRE(bias.size() == m.cols(), "add_bias: bias must match column count");
  // Single flat pass over the backend result, no temporaries — this runs
  // once per Linear::forward, m=1 in decode loops.
  double* p = m.data().data();
  const std::size_t cols = m.cols();
  for (std::size_t r = 0; r < m.rows(); ++r, p += cols) {
    for (std::size_t c = 0; c < cols; ++c) p[c] += bias[c];
  }
}

void scale_inplace(Matrix& m, double s) {
  for (auto& x : m.data()) x *= s;
}

}  // namespace pdac::nn
