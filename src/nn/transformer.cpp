#include "nn/transformer.hpp"

#include "nn/ops.hpp"

namespace pdac::nn {

Transformer::Transformer(TransformerConfig cfg)
    : cfg_(cfg), final_gamma_(cfg.d_model, 1.0), final_beta_(cfg.d_model, 0.0) {
  layers_.reserve(cfg_.layers);
  for (std::size_t i = 0; i < cfg_.layers; ++i) {
    layers_.emplace_back(cfg_.d_model, cfg_.heads, cfg_.d_ff);
  }
}

void Transformer::init_random(std::uint64_t seed) {
  Rng rng(seed);
  for (auto& layer : layers_) layer.init_random(rng);
}

Matrix Transformer::forward(const Matrix& x, GemmBackend& backend) const {
  Matrix h = x;
  for (const auto& layer : layers_) h = layer.forward(h, backend);
  layer_norm(h, final_gamma_, final_beta_);
  return h;
}

Matrix Transformer::random_input(std::uint64_t seed) const {
  Rng rng(seed);
  return Matrix::random_gaussian(cfg_.seq_len, cfg_.d_model, rng, 0.0, 1.0);
}

}  // namespace pdac::nn
