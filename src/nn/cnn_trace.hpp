// cnn_trace.hpp — convolutional workloads for the photonic accelerator.
//
// The paper's lineage runs through CNN accelerators (Albireo integrates
// analog photonic dot products with CNNs, §I–II), and the P-DAC replaces
// DACs in any of them.  Convolutions lower to GEMMs by im2col:
//   m = out_h·out_w,  k = in_ch·kernel²,  n = out_ch
// with static weights, so the existing energy model prices them
// directly.  This module describes conv layers, lowers a network to a
// WorkloadTrace, and provides a VGG-style reference CNN at ImageNet
// scale for the A13 bench.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "nn/workload_trace.hpp"

namespace pdac::nn {

struct ConvLayer {
  std::string name;
  std::size_t in_channels{};
  std::size_t out_channels{};
  std::size_t kernel{3};
  std::size_t stride{1};
  std::size_t padding{1};

  /// Output spatial size for a square input of `in_size`.
  [[nodiscard]] std::size_t out_size(std::size_t in_size) const {
    return (in_size + 2 * padding - kernel) / stride + 1;
  }
};

struct CnnConfig {
  std::string name{"cnn"};
  std::size_t input_size{224};  ///< square input
  std::size_t input_channels{3};
  std::vector<ConvLayer> convs;
  /// 2× max-pool after these conv indices (0-based).
  std::vector<std::size_t> pool_after;
  /// Fully-connected head: (in, out) pairs appended after flattening.
  std::vector<std::pair<std::size_t, std::size_t>> fc;

  [[nodiscard]] std::size_t total_macs() const;
};

/// im2col-lower the network into GEMM ops (conv → kConv, head → kFfn).
WorkloadTrace trace_cnn_forward(const CnnConfig& cfg);

/// VGG-11-like reference network on 224×224×3 (the scale of the DeiT
/// comparison workload).
CnnConfig vgg11_like();
/// Small CNN for functional tests.
CnnConfig tiny_cnn(std::size_t input_size = 16);

}  // namespace pdac::nn
