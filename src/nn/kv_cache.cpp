#include "nn/kv_cache.hpp"

#include <atomic>
#include <utility>

namespace pdac::nn {

std::uint64_t next_kv_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

KvPreparedCache::KvPreparedCache(KvPreparedCacheConfig cfg) : cfg_(cfg) {}

std::shared_ptr<ptc::PreparedOperand> KvPreparedCache::lookup(
    std::uint64_t id) {
  if (!cfg_.enabled || id == 0) {
    ++stats_.misses;
    return nullptr;
  }
  const auto it = index_.find(id);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->op;
}

void KvPreparedCache::insert(std::uint64_t id,
                             std::shared_ptr<ptc::PreparedOperand> op) {
  if (!cfg_.enabled || id == 0 || op == nullptr) return;
  erase(id);
  const std::size_t bytes = op->bytes();
  if (bytes > cfg_.capacity_bytes) {
    ++stats_.oversized_rejects;
    return;
  }
  lru_.push_front(Entry{id, std::move(op), bytes});
  index_[id] = lru_.begin();
  stats_.resident_bytes += bytes;
  stats_.entries = lru_.size();
  evict_over_capacity();
}

void KvPreparedCache::updated(std::uint64_t id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return;
  Entry& e = *it->second;
  const std::size_t bytes = e.op->bytes();
  stats_.resident_bytes += bytes;
  stats_.resident_bytes -= e.bytes;
  e.bytes = bytes;
  if (bytes > cfg_.capacity_bytes) {
    // Grown past the whole cache: evict it outright, like an oversized
    // insert — keeping it would pin the cache at one entry forever.
    ++stats_.oversized_rejects;
    drop(it->second);
    return;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  evict_over_capacity();
}

void KvPreparedCache::erase(std::uint64_t id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return;
  ++stats_.invalidations;
  drop(it->second);
}

void KvPreparedCache::clear() {
  stats_.invalidations += lru_.size();
  lru_.clear();
  index_.clear();
  stats_.resident_bytes = 0;
  stats_.entries = 0;
}

void KvPreparedCache::drop(std::list<Entry>::iterator it) {
  stats_.resident_bytes -= it->bytes;
  index_.erase(it->id);
  lru_.erase(it);
  stats_.entries = lru_.size();
}

void KvPreparedCache::evict_over_capacity() {
  while (stats_.resident_bytes > cfg_.capacity_bytes && !lru_.empty()) {
    ++stats_.evictions;
    drop(std::prev(lru_.end()));
  }
}

}  // namespace pdac::nn
