// transformer.hpp — an encoder stack with a final layer norm; the model
// object the functional accuracy experiments run end to end through the
// simulated photonic hardware.
#pragma once

#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "nn/backend.hpp"
#include "nn/encoder_layer.hpp"
#include "nn/model_config.hpp"

namespace pdac::nn {

class Transformer {
 public:
  explicit Transformer(TransformerConfig cfg);

  /// Deterministic synthetic "pre-trained" weights.
  void init_random(std::uint64_t seed);

  /// x: (seq × d_model) embedding matrix → final hidden states.
  [[nodiscard]] Matrix forward(const Matrix& x, GemmBackend& backend) const;

  /// Seeded synthetic input embeddings matching this config's shape.
  [[nodiscard]] Matrix random_input(std::uint64_t seed) const;

  [[nodiscard]] const TransformerConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t layer_count() const { return layers_.size(); }
  EncoderLayer& layer(std::size_t i) { return layers_.at(i); }

 private:
  TransformerConfig cfg_;
  std::vector<EncoderLayer> layers_;
  std::vector<double> final_gamma_, final_beta_;
};

}  // namespace pdac::nn
