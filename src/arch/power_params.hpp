// power_params.hpp — calibrated device power/energy constants.
//
// The paper publishes percentages plus two absolute totals; DESIGN.md §5
// inverts those into a component table for LT-B (2048 modulator channels,
// 128 ADC channels, 5 GHz).  The constants below are the bottom-up unit
// values that reproduce that table:
//
//   component        4-bit (system)   8-bit (system)   law
//   laser            5.492 W          12.81 W          P₀·2^{0.30553·(b−4)}
//   DAC array        3.214 W          25.70 W          κ·b·2^{b/2} per DAC
//   ADC array        2.126 W          4.252 W          per-bit · b per ADC
//   P-DAC array      1.478 W          5.355 W          a·b + c·(2^b−1) per ch.
//   controller       1.200 W          3.930 W          κc·b^{1.71} (eliminated by P-DAC)
//   thermal tuning   1.200 W          1.200 W          constant
//   receivers+digital 1.514 W         3.028 W          per-bit · b
//
// Laser scaling is the SNR-driven fit to the paper's implied values (the
// detector must resolve 2^b levels, and the paper's own numbers give a
// 2.33× power step from 4 to 8 bits).  The DAC law reproduces the 8.0×
// step the paper's Fig. 5 + Fig. 11 imply, anchored at the Caragiulo [2]
// switched-capacitor design.  SRAM/data-movement and digital vector-unit
// energies are calibrated against the Fig. 9 headline totals.
#pragma once

#include "common/units.hpp"

namespace pdac::arch {

struct PowerParams {
  // --- laser ---------------------------------------------------------------
  units::Power laser_base{units::watts(5.492)};  ///< system laser power at 4-bit
  double laser_bit_exponent{0.30553};            ///< 2^{exp·(b−4)} scaling

  // --- electrical DAC (baseline) -------------------------------------------
  double dac_kappa_watts{98.07e-6};  ///< κ in P = κ·b·2^{b/2} per DAC at f₀

  // --- electrical ADC (both systems) ----------------------------------------
  double adc_per_bit_watts{4.152e-3};  ///< per ADC, per bit at f₀

  // --- P-DAC ------------------------------------------------------------------
  units::Power pdac_pd_ring_per_bit{units::microwatts(160.9).watts()};
  units::Power pdac_tia_gain_unit{units::microwatts(5.206).watts()};

  // --- controller (baseline only; P-DAC removes it) -------------------------
  double controller_kappa_watts{0.11187};   ///< system-wide, P = κc·b^{1.7117}
  double controller_bit_exponent{1.7117};   ///< fit to 1.20 W @4b, 3.93 W @8b

  // --- always-on analog/digital support --------------------------------------
  units::Power thermal_tuning{units::watts(1.2)};       ///< ring heater budget
  double receiver_digital_per_bit_watts{0.3785};        ///< system-wide, ·b

  // --- memory & movement -------------------------------------------------------
  units::Energy sram_energy_per_bit{units::picojoules(9.63).joules()};
  /// Digital vector unit (softmax/LN/GELU), per element per bit.
  units::Energy vector_energy_per_element_bit{units::picojoules(0.1).joules()};
};

/// The calibrated LT-B parameter set.
inline PowerParams lt_power_params() { return PowerParams{}; }

}  // namespace pdac::arch
