// memory_system.hpp — bandwidth-aware runtime (roofline) model.
//
// The paper evaluates power in a "fully compute-bound scenario" (Fig. 11)
// and explicitly defers memory-bound behaviour ("a projection of its
// energy consumption under scenarios with sufficient memory bandwidth in
// the future").  This module supplies the missing half: a two-level
// memory system (off-chip HBM for weights and KV cache, on-chip M2 SRAM
// for activations) and a roofline runtime
//     t = max(t_compute, t_hbm, t_sram)
// from which throughput, utilization, and the stall-extended energy of
// both system variants follow.  Stalls burn laser/thermal/receiver power
// without computing, so memory-bound deployments dilute the P-DAC's
// relative saving — quantified by the A7 bench.
#pragma once

#include <cstdint>

#include "arch/component_power.hpp"
#include "arch/lt_config.hpp"
#include "arch/power_params.hpp"
#include "common/units.hpp"
#include "nn/workload_trace.hpp"

namespace pdac::arch {

struct MemorySystemConfig {
  double hbm_bandwidth_gb_s{256.0};    ///< off-chip: weights + KV cache
  double sram_bandwidth_gb_s{4096.0};  ///< on-chip: activation staging
};

/// Byte traffic of a trace split by memory level.
struct TrafficSummary {
  std::uint64_t hbm_bytes{};   ///< weight + KV-cache streaming
  std::uint64_t sram_bytes{};  ///< activation staging of static GEMMs
};

TrafficSummary summarize_traffic(const nn::WorkloadTrace& trace, int bits);

struct RooflineResult {
  units::Time compute_time;
  units::Time hbm_time;
  units::Time sram_time;

  [[nodiscard]] units::Time runtime() const;
  [[nodiscard]] bool memory_bound() const;
  /// Fraction of the runtime the compute arrays are busy.
  [[nodiscard]] double compute_utilization() const;
};

/// Roofline runtime of one trace execution on `cfg`.
RooflineResult roofline_runtime(const nn::WorkloadTrace& trace, const LtConfig& cfg,
                                const MemorySystemConfig& mem, int bits);

/// Stall-extended energy: the Fig. 9-style event energy plus the static
/// power (laser + thermal + receivers) burned during memory stalls.
struct StalledEnergy {
  units::Energy baseline;
  units::Energy pdac;
  [[nodiscard]] double saving() const {
    return baseline.joules() > 0.0 ? 1.0 - pdac.joules() / baseline.joules() : 0.0;
  }
};

StalledEnergy stalled_energy(const nn::WorkloadTrace& trace, const LtConfig& cfg,
                             const PowerParams& params, const MemorySystemConfig& mem,
                             int bits);

}  // namespace pdac::arch
