// energy_model.hpp — workload energy accounting (paper Figs. 9–10).
//
// Maps a transformer op trace onto the LT-B organization and charges
// every energy-bearing event:
//
//   modulation — one conversion per operand value entering a modulator.
//     Static-weight GEMMs benefit from LT's array broadcast: an H×W DDot
//     tile consumes (H+W)·k conversions for H·W·k MACs.  Dynamic–dynamic
//     products (Q·Kᵀ, A·V) are consumed in systolic order as they are
//     produced and cannot be broadcast-shared, costing 2·H·W·k
//     conversions per tile — this is why attention, whose dynamic ops
//     carry no weight traffic but extra conversions, gains *more* from
//     the P-DAC than the FFN does (paper §IV-B).
//     Priced at DAC+controller (baseline) or P-DAC (proposed) rates.
//   adc — one sample per DDot group per analog-accumulation window.
//   static — laser + thermal tuning + receivers/digital, charged over
//     the op's occupancy time on the array.
//   movement — SRAM traffic: weight fetch plus activation staging for
//     static GEMMs; dynamic products stay in PTC-local buffers.
//   vector — the digital unit running softmax/LN/GELU ("other" class).
//
// The P-DAC affects only the modulation term, exactly as the paper
// states ("P-DAC does not affect the energy consumption associated with
// data movement").
#pragma once

#include <cstdint>

#include "arch/component_power.hpp"
#include "arch/lt_config.hpp"
#include "arch/power_params.hpp"
#include "common/units.hpp"
#include "nn/workload_trace.hpp"
#include "ptc/event_counter.hpp"

namespace pdac::arch {

struct EnergyBreakdown {
  units::Energy modulation;
  units::Energy adc;
  units::Energy static_power;
  units::Energy movement;
  units::Energy vector_unit;

  [[nodiscard]] units::Energy total() const {
    return modulation + adc + static_power + movement + vector_unit;
  }
  EnergyBreakdown& operator+=(const EnergyBreakdown& o) {
    modulation += o.modulation;
    adc += o.adc;
    static_power += o.static_power;
    movement += o.movement;
    vector_unit += o.vector_unit;
    return *this;
  }
};

struct WorkloadEnergy {
  SystemVariant variant{SystemVariant::kDacBased};
  int bits{8};
  EnergyBreakdown attention;
  EnergyBreakdown ffn;
  EnergyBreakdown conv;
  EnergyBreakdown other;
  std::uint64_t wall_cycles{};
  units::Time runtime;

  [[nodiscard]] EnergyBreakdown total() const {
    EnergyBreakdown t = attention;
    t += ffn;
    t += conv;
    t += other;
    return t;
  }
  [[nodiscard]] const EnergyBreakdown& of(nn::OpClass c) const;
};

/// Price one forward pass of `trace` on `cfg` under `variant`.
WorkloadEnergy evaluate_energy(const nn::WorkloadTrace& trace, const LtConfig& cfg,
                               const PowerParams& params, int bits, SystemVariant variant);

/// Baseline-vs-P-DAC comparison with the savings the figures report.
struct EnergyComparison {
  WorkloadEnergy baseline;
  WorkloadEnergy pdac;

  /// 1 − E_pdac/E_baseline over the whole inference.
  [[nodiscard]] double total_saving() const;
  /// Savings within one op class (the per-category numbers of §IV-B1).
  [[nodiscard]] double saving(nn::OpClass c) const;
};

EnergyComparison compare_energy(const nn::WorkloadTrace& trace, const LtConfig& cfg,
                                const PowerParams& params, int bits);

/// Overhead of the fault detection/recovery loop (faults/self_test.hpp
/// plus the degraded mapper): nothing is free — probing a calibration
/// code costs a modulation and an ADC sample, a re-trim runs its
/// least-squares fit on the digital vector unit, and every tile remapped
/// off a fenced array re-stages its operands from SRAM.
struct RecalibrationCost {
  std::uint64_t probe_events{};    ///< SelfTestReport::probe_events
  std::uint64_t retrims{};         ///< SelfTestReport::retrims
  std::uint64_t remapped_tiles{};  ///< Schedule::remapped_tiles
};

units::Energy recalibration_energy(const RecalibrationCost& cost, const LtConfig& cfg,
                                   const PowerParams& params, int bits,
                                   SystemVariant variant);

/// Price a raw functional-simulator event counter (ptc::EventCounter)
/// under the same per-event rates evaluate_energy uses: modulations at
/// the variant's conversion energy, ADC samples at the readout energy,
/// and static power over the counter's occupancy cycles.  This is how
/// the ABFT guard's overhead stays honest — the checksum-lane charge and
/// every recovery re-run (faults::HealthSnapshot's checksum_events /
/// retry_events) are priced with exactly the data path's rates.
units::Energy event_energy(const ptc::EventCounter& events, const LtConfig& cfg,
                           const PowerParams& params, int bits, SystemVariant variant);

}  // namespace pdac::arch
