// accelerator.hpp — the integrated system model: one object that ties
// together the organization (lt_config), device power (power_params),
// memory system, dependency-aware scheduling and the energy comparison.
//
// This is the top-level API a deployment study uses: configure once,
// `run()` a workload trace, and read back energy (both modulator
// variants), runtime with pipeline + memory effects, utilization and
// traffic — everything the per-figure benches compute, in one report.
#pragma once

#include "arch/component_power.hpp"
#include "arch/energy_model.hpp"
#include "arch/lt_config.hpp"
#include "arch/mapper.hpp"
#include "arch/memory_system.hpp"
#include "arch/power_params.hpp"
#include "nn/workload_trace.hpp"

namespace pdac::arch {

struct AcceleratorConfig {
  LtConfig organization{};
  PowerParams power{};
  MemorySystemConfig memory{};
  int bits{8};
};

struct InferenceReport {
  EnergyComparison energy;       ///< event-priced energy, DAC vs P-DAC
  Schedule schedule;             ///< dependency-aware compute timeline
  RooflineResult roofline;       ///< bandwidth limits
  TrafficSummary traffic;        ///< bytes by memory level
  StalledEnergy stalled_energy;  ///< energy including memory-stall burn

  /// Wall-clock runtime: the scheduled compute timeline or the memory
  /// pipe, whichever is longer.
  [[nodiscard]] units::Time runtime(const LtConfig& cfg) const;
  /// Inferences per second at that runtime.
  [[nodiscard]] double throughput(const LtConfig& cfg) const;
  /// Energy saving including pipeline and stall effects.
  [[nodiscard]] double effective_saving() const { return stalled_energy.saving(); }
};

class Accelerator {
 public:
  explicit Accelerator(AcceleratorConfig cfg);

  /// Evaluate one forward pass of the traced workload.
  [[nodiscard]] InferenceReport run(const nn::WorkloadTrace& trace) const;

  /// Compute-bound power breakdown of this instance (the Fig. 5/11 view).
  [[nodiscard]] PowerBreakdown power(SystemVariant variant) const;

  [[nodiscard]] const AcceleratorConfig& config() const { return cfg_; }

 private:
  AcceleratorConfig cfg_;
};

}  // namespace pdac::arch
