#include "arch/energy_model.hpp"

#include <algorithm>

#include "arch/op_events.hpp"
#include "common/require.hpp"

namespace pdac::arch {

const EnergyBreakdown& WorkloadEnergy::of(nn::OpClass c) const {
  switch (c) {
    case nn::OpClass::kAttention: return attention;
    case nn::OpClass::kFfn: return ffn;
    case nn::OpClass::kConv: return conv;
    case nn::OpClass::kOther: return other;
  }
  return other;
}

WorkloadEnergy evaluate_energy(const nn::WorkloadTrace& trace, const LtConfig& cfg,
                               const PowerParams& params, int bits, SystemVariant variant) {
  PDAC_REQUIRE(bits >= 2 && bits <= 16, "evaluate_energy: bits in [2, 16]");
  WorkloadEnergy out;
  out.variant = variant;
  out.bits = bits;

  const double f = cfg.clock.hertz();
  const double n_mod = static_cast<double>(cfg.modulator_channels());

  // Per-event energies, consistent with the compute-bound power model:
  // at 100 % utilization, events/s × energy/event equals the component's
  // Fig. 11 power by construction.
  const double e_mod =
      variant == SystemVariant::kDacBased
          ? dac_unit_power(params, bits).watts() / f +
                controller_power(params, bits).watts() / (n_mod * f)
          : pdac_unit_power(params, bits).watts() / f;
  const double e_adc = adc_unit_power(params, bits).watts() / f;
  const units::Power p_static = laser_power(params, bits) + params.thermal_tuning +
                                receiver_digital_power(params, bits);
  const double e_sram_bit = params.sram_energy_per_bit.joules();
  const double e_vec_bit = params.vector_energy_per_element_bit.joules();
  const double arrays = static_cast<double>(cfg.arrays());

  for (const auto& op : trace.gemms) {
    const OpEvents ev = count_op_events(op, cfg);
    EnergyBreakdown e;
    e.modulation = units::joules(static_cast<double>(ev.modulations) * e_mod);
    e.adc = units::joules(static_cast<double>(ev.adc_samples) * e_adc);
    // Tiles are distributed over all arrays; occupancy is the wall time.
    const double wall_seconds = static_cast<double>(ev.tile_cycles) / arrays / f;
    e.static_power = units::joules(p_static.watts() * wall_seconds);
    const std::uint64_t moved_elements = op.weight_elements() +
                                         (op.static_weights ? op.activation_elements() : 0) +
                                         op.total_extra_movement_elements();
    e.movement = units::joules(static_cast<double>(moved_elements) *
                               static_cast<double>(bits) * e_sram_bit);

    out.wall_cycles += ev.tile_cycles / cfg.arrays();
    switch (op.op_class) {
      case nn::OpClass::kAttention: out.attention += e; break;
      case nn::OpClass::kFfn: out.ffn += e; break;
      case nn::OpClass::kConv: out.conv += e; break;
      case nn::OpClass::kOther: out.other += e; break;
    }
  }

  for (const auto& vop : trace.vector_ops) {
    EnergyBreakdown e;
    e.vector_unit = units::joules(static_cast<double>(vop.elements) *
                                  static_cast<double>(bits) * e_vec_bit);
    switch (vop.op_class) {
      case nn::OpClass::kAttention: out.attention += e; break;
      case nn::OpClass::kFfn: out.ffn += e; break;
      case nn::OpClass::kConv: out.conv += e; break;
      case nn::OpClass::kOther: out.other += e; break;
    }
  }

  out.runtime = units::seconds(static_cast<double>(out.wall_cycles) / f);
  return out;
}

double EnergyComparison::total_saving() const {
  const double base = baseline.total().total().joules();
  return base > 0.0 ? 1.0 - pdac.total().total().joules() / base : 0.0;
}

double EnergyComparison::saving(nn::OpClass c) const {
  const double base = baseline.of(c).total().joules();
  return base > 0.0 ? 1.0 - pdac.of(c).total().joules() / base : 0.0;
}

units::Energy recalibration_energy(const RecalibrationCost& cost, const LtConfig& cfg,
                                   const PowerParams& params, int bits,
                                   SystemVariant variant) {
  PDAC_REQUIRE(bits >= 2 && bits <= 16, "recalibration_energy: bits in [2, 16]");
  const double f = cfg.clock.hertz();
  const double n_mod = static_cast<double>(cfg.modulator_channels());
  const double e_mod =
      variant == SystemVariant::kDacBased
          ? dac_unit_power(params, bits).watts() / f +
                controller_power(params, bits).watts() / (n_mod * f)
          : pdac_unit_power(params, bits).watts() / f;
  const double e_adc = adc_unit_power(params, bits).watts() / f;

  // Probe: one code driven through the modulator, one sample read back.
  const double probes = static_cast<double>(cost.probe_events) * (e_mod + e_adc);

  // Re-trim fit: three banks of least squares over ~2(b+1) probe rows of
  // b+2 terms each, executed on the digital vector unit.
  const double b = static_cast<double>(bits);
  const double fit_elements = 3.0 * 2.0 * (b + 1.0) * (b + 2.0);
  const double retrims = static_cast<double>(cost.retrims) * fit_elements * b *
                         params.vector_energy_per_element_bit.joules();

  // Remap: a displaced tile re-stages its H row and W column operand
  // vectors (one value per wavelength) from SRAM onto the new array.
  const double tile_bits = static_cast<double>(cfg.array_rows + cfg.array_cols) *
                           static_cast<double>(cfg.wavelengths) * b;
  const double remaps = static_cast<double>(cost.remapped_tiles) * tile_bits *
                        params.sram_energy_per_bit.joules();

  return units::joules(probes + retrims + remaps);
}

units::Energy event_energy(const ptc::EventCounter& events, const LtConfig& cfg,
                           const PowerParams& params, int bits, SystemVariant variant) {
  PDAC_REQUIRE(bits >= 2 && bits <= 16, "event_energy: bits in [2, 16]");
  const double f = cfg.clock.hertz();
  const double n_mod = static_cast<double>(cfg.modulator_channels());
  const double e_mod =
      variant == SystemVariant::kDacBased
          ? dac_unit_power(params, bits).watts() / f +
                controller_power(params, bits).watts() / (n_mod * f)
          : pdac_unit_power(params, bits).watts() / f;
  const double e_adc = adc_unit_power(params, bits).watts() / f;
  const units::Power p_static = laser_power(params, bits) + params.thermal_tuning +
                                receiver_digital_power(params, bits);
  // The counter's cycles are occupancy on one array, so the static term
  // is charged over exactly that wall time.
  const double joules = static_cast<double>(events.modulation_events) * e_mod +
                        static_cast<double>(events.adc_events) * e_adc +
                        p_static.watts() * static_cast<double>(events.cycles) / f;
  return units::joules(joules);
}

EnergyComparison compare_energy(const nn::WorkloadTrace& trace, const LtConfig& cfg,
                                const PowerParams& params, int bits) {
  return EnergyComparison{
      evaluate_energy(trace, cfg, params, bits, SystemVariant::kDacBased),
      evaluate_energy(trace, cfg, params, bits, SystemVariant::kPdacBased)};
}

}  // namespace pdac::arch
