#include "arch/sram.hpp"

#include "common/require.hpp"

namespace pdac::arch {

Sram::Sram(SramConfig cfg) : cfg_(cfg) {
  PDAC_REQUIRE(cfg_.capacity_bytes > 0, "Sram: capacity must be positive");
  PDAC_REQUIRE(cfg_.energy_per_bit.joules() >= 0.0, "Sram: energy must be non-negative");
}

units::Energy Sram::read(std::uint64_t bits) {
  bits_read_ += bits;
  return units::joules(cfg_.energy_per_bit.joules() * static_cast<double>(bits));
}

units::Energy Sram::write(std::uint64_t bits) {
  bits_written_ += bits;
  return units::joules(cfg_.energy_per_bit.joules() * static_cast<double>(bits));
}

units::Energy Sram::total_energy() const {
  return units::joules(cfg_.energy_per_bit.joules() *
                       static_cast<double>(bits_read_ + bits_written_));
}

bool Sram::fits(std::uint64_t bytes) const { return bytes <= cfg_.capacity_bytes; }

}  // namespace pdac::arch
