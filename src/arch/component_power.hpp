// component_power.hpp — system-level power breakdowns (paper Fig. 5 and
// Fig. 11).
//
// Computes per-component power for a fully compute-bound LT-B under the
// two system variants: the traditional DAC-based modulator chain and the
// P-DAC-based chain (which removes the electrical DACs *and* the arccos
// controller).
#pragma once

#include <string>
#include <vector>

#include "arch/lt_config.hpp"
#include "arch/power_params.hpp"
#include "common/units.hpp"

namespace pdac::arch {

enum class SystemVariant { kDacBased, kPdacBased };

enum class Component {
  kLaser,
  kDac,         ///< electrical DACs (baseline only)
  kPdac,        ///< photonic DACs incl. integrated MZMs (P-DAC system only)
  kAdc,
  kController,  ///< arccos/drive computation (baseline only)
  kThermal,     ///< ring thermal tuning
  kReceiverDigital,  ///< output PD/TIAs, clocking, digital control
};

struct ComponentPower {
  Component component;
  units::Power power;
};

struct PowerBreakdown {
  SystemVariant variant{SystemVariant::kDacBased};
  int bits{8};
  std::vector<ComponentPower> parts;

  [[nodiscard]] units::Power total() const;
  [[nodiscard]] double share(Component c) const;  ///< fraction of total
  [[nodiscard]] units::Power power(Component c) const;
};

// --- unit/component power laws (all calibrated in power_params.hpp) --------
units::Power laser_power(const PowerParams& p, int bits);
units::Power dac_unit_power(const PowerParams& p, int bits);
units::Power adc_unit_power(const PowerParams& p, int bits);
units::Power pdac_unit_power(const PowerParams& p, int bits);
units::Power controller_power(const PowerParams& p, int bits);
units::Power receiver_digital_power(const PowerParams& p, int bits);

/// Full-system breakdown in the compute-bound scenario.
PowerBreakdown compute_power_breakdown(const LtConfig& cfg, const PowerParams& p, int bits,
                                       SystemVariant variant);

std::string to_string(Component c);
std::string to_string(SystemVariant v);

}  // namespace pdac::arch
