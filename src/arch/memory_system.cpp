#include "arch/memory_system.hpp"

#include <algorithm>

#include "arch/energy_model.hpp"
#include "common/require.hpp"

namespace pdac::arch {

TrafficSummary summarize_traffic(const nn::WorkloadTrace& trace, int bits) {
  PDAC_REQUIRE(bits >= 1, "summarize_traffic: bits must be positive");
  TrafficSummary t;
  for (const auto& g : trace.gemms) {
    const std::uint64_t b = static_cast<std::uint64_t>(bits);
    t.hbm_bytes += (g.weight_elements() + g.total_extra_movement_elements()) * b / 8ull;
    if (g.static_weights) t.sram_bytes += g.activation_elements() * b / 8ull;
  }
  return t;
}

units::Time RooflineResult::runtime() const {
  return units::seconds(std::max({compute_time.seconds(), hbm_time.seconds(),
                                  sram_time.seconds()}));
}

bool RooflineResult::memory_bound() const {
  return runtime().seconds() > compute_time.seconds() * (1.0 + 1e-12);
}

double RooflineResult::compute_utilization() const {
  const double rt = runtime().seconds();
  return rt > 0.0 ? compute_time.seconds() / rt : 1.0;
}

RooflineResult roofline_runtime(const nn::WorkloadTrace& trace, const LtConfig& cfg,
                                const MemorySystemConfig& mem, int bits) {
  PDAC_REQUIRE(mem.hbm_bandwidth_gb_s > 0.0 && mem.sram_bandwidth_gb_s > 0.0,
               "roofline_runtime: bandwidths must be positive");
  // Compute time from the same tiling the energy model uses.
  const WorkloadEnergy we =
      evaluate_energy(trace, cfg, PowerParams{}, bits, SystemVariant::kDacBased);
  const TrafficSummary traffic = summarize_traffic(trace, bits);

  RooflineResult r;
  r.compute_time = we.runtime;
  r.hbm_time =
      units::seconds(static_cast<double>(traffic.hbm_bytes) / (mem.hbm_bandwidth_gb_s * 1e9));
  r.sram_time = units::seconds(static_cast<double>(traffic.sram_bytes) /
                               (mem.sram_bandwidth_gb_s * 1e9));
  return r;
}

StalledEnergy stalled_energy(const nn::WorkloadTrace& trace, const LtConfig& cfg,
                             const PowerParams& params, const MemorySystemConfig& mem,
                             int bits) {
  const EnergyComparison cmp = compare_energy(trace, cfg, params, bits);
  const RooflineResult roof = roofline_runtime(trace, cfg, mem, bits);
  const double stall_seconds =
      std::max(0.0, roof.runtime().seconds() - roof.compute_time.seconds());
  // Static power burned during stalls is identical in both variants: the
  // laser, thermal tuning, and receive chain stay on while waiting.
  const units::Power p_static = laser_power(params, bits) + params.thermal_tuning +
                                receiver_digital_power(params, bits);
  const units::Energy stall = units::joules(p_static.watts() * stall_seconds);
  return StalledEnergy{cmp.baseline.total().total() + stall,
                       cmp.pdac.total().total() + stall};
}

}  // namespace pdac::arch
