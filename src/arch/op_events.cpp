#include "arch/op_events.hpp"

#include <algorithm>

namespace pdac::arch {

OpEvents count_op_events(const nn::GemmOp& op, const LtConfig& cfg) {
  OpEvents ev;
  const std::size_t nl = cfg.wavelengths;
  const std::size_t chunks = (op.k + nl - 1) / nl;
  const std::size_t adc_windows = (chunks + cfg.ddots_per_adc - 1) / cfg.ddots_per_adc;
  for (std::size_t i0 = 0; i0 < op.m; i0 += cfg.array_rows) {
    const std::size_t h = std::min(cfg.array_rows, op.m - i0);
    for (std::size_t j0 = 0; j0 < op.n; j0 += cfg.array_cols) {
      const std::size_t w = std::min(cfg.array_cols, op.n - j0);
      ev.modulations += op.static_weights ? (h + w) * op.k : 2 * h * w * op.k;
      ev.adc_samples += h * w * adc_windows;
      ev.tile_cycles += chunks;
      ev.ddot_cycles += h * w * chunks;
    }
  }
  ev.modulations *= op.repeats;
  ev.adc_samples *= op.repeats;
  ev.tile_cycles *= op.repeats;
  ev.ddot_cycles *= op.repeats;
  return ev;
}

}  // namespace pdac::arch
