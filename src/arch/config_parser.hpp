// config_parser.hpp — textual configuration for Accelerator instances.
//
// Deployment studies sweep organizations from scripts; this loads an
// INI-style description into an AcceleratorConfig:
//
//   [organization]
//   clusters = 2
//   cores_per_cluster = 8
//   array_rows = 8
//   array_cols = 8
//   wavelengths = 8
//   ddots_per_adc = 8
//   clock_ghz = 5
//   [memory]
//   hbm_gb_s = 512
//   sram_gb_s = 4096
//   [system]
//   bits = 8
//
// Omitted keys keep their LT-B defaults.  Unknown sections or keys are
// errors (typos must not silently fall back to defaults); `#` and `;`
// start comments.
#pragma once

#include <string>

#include "arch/accelerator.hpp"

namespace pdac::arch {

/// Parse a configuration from text.  Throws PreconditionError with a
/// line-numbered message on malformed input, unknown keys, or
/// out-of-range values.
AcceleratorConfig parse_accelerator_config(const std::string& text);

/// Render a config back to the same textual form (round-trippable).
std::string to_config_text(const AcceleratorConfig& cfg);

}  // namespace pdac::arch
