// op_events.hpp — per-op hardware event counts on the LT organization.
//
// Shared between the energy model (which prices the events) and the
// mapper (which schedules the occupancy cycles).  Counting follows the
// DPTC tiling: static-weight GEMMs broadcast operands across an H×W tile
// ((H+W)·k conversions per tile), dynamic–dynamic products convert both
// operands per DDot (2·H·W·k), and ADC windows aggregate
// `ddots_per_adc` reduction chunks.
#pragma once

#include <cstdint>

#include "arch/lt_config.hpp"
#include "nn/workload_trace.hpp"

namespace pdac::arch {

struct OpEvents {
  std::uint64_t modulations{};
  std::uint64_t adc_samples{};
  std::uint64_t tile_cycles{};  ///< occupancy of ONE array processing all tiles
  /// DDot-granular busy time: Σ h·w·chunks over tiles.  Ragged tiles
  /// (h < H or w < W) occupy the array for full cycles but keep only a
  /// fraction of its DDots busy — the intra-array utilization loss that
  /// dominates GEMV-shaped decode work.
  std::uint64_t ddot_cycles{};
};

OpEvents count_op_events(const nn::GemmOp& op, const LtConfig& cfg);

}  // namespace pdac::arch
