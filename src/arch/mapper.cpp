#include "arch/mapper.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "arch/op_events.hpp"
#include "common/require.hpp"

namespace pdac::arch {

double Schedule::utilization() const {
  const double denom =
      static_cast<double>(arrays) * static_cast<double>(makespan_cycles);
  return denom > 0.0 ? static_cast<double>(busy_array_cycles) / denom : 1.0;
}

double Schedule::ddot_utilization() const {
  const double denom = static_cast<double>(arrays) *
                       static_cast<double>(ddots_per_array) *
                       static_cast<double>(makespan_cycles);
  return denom > 0.0 ? static_cast<double>(busy_ddot_cycles) / denom : 1.0;
}

units::Time Schedule::runtime(units::Frequency clock) const {
  return units::seconds(static_cast<double>(makespan_cycles) / clock.hertz());
}

std::uint64_t Schedule::ideal_cycles() const {
  return (busy_array_cycles + arrays - 1) / std::max<std::size_t>(arrays, 1);
}

double Schedule::slowdown() const {
  const auto ideal = ideal_cycles();
  return ideal > 0 ? static_cast<double>(makespan_cycles) / static_cast<double>(ideal)
                   : 1.0;
}

Stage stage_of(const nn::GemmOp& op) {
  const auto has = [&op](const char* needle) {
    return op.label.find(needle) != std::string::npos;
  };
  if (has("Q-proj") || has("K-proj") || has("V-proj")) return Stage::kQkvProjection;
  if (has("QK^T")) return Stage::kScores;
  if (has("AV")) return Stage::kContext;
  if (has("O-proj")) return Stage::kOutputProjection;
  if (has("FFN-up")) return Stage::kFfnUp;
  if (has("FFN-down")) return Stage::kFfnDown;
  // Unknown ops are treated as fully serializing, the safe assumption.
  return Stage::kFfnDown;
}

namespace {

/// Layer key of an op label ("L3." or "D7." prefix); ops sharing a key
/// and stage may run concurrently.
std::string layer_key(const std::string& label) {
  const auto dot = label.find('.');
  return dot == std::string::npos ? label : label.substr(0, dot);
}

}  // namespace

namespace {

Schedule schedule_on_pool(const nn::WorkloadTrace& trace, const LtConfig& cfg,
                          std::size_t pool_arrays, double wavelength_availability) {
  Schedule sched;
  sched.arrays = pool_arrays;
  sched.ddots_per_array = cfg.array_rows * cfg.array_cols;

  // Group consecutive ops by (layer, stage) preserving trace order —
  // layers are sequentially dependent, stages within a layer ordered.
  struct Group {
    std::vector<const nn::GemmOp*> ops;
  };
  std::vector<Group> groups;
  std::string last_key;
  Stage last_stage{};
  for (const auto& op : trace.gemms) {
    const std::string key = layer_key(op.label);
    const Stage st = stage_of(op);
    if (groups.empty() || key != last_key || st != last_stage) {
      groups.emplace_back();
      last_key = key;
      last_stage = st;
    }
    groups.back().ops.push_back(&op);
  }

  std::uint64_t clock_cycle = 0;
  for (const auto& group : groups) {
    // Concurrent ops split the array pool evenly; when a group holds
    // more ops than arrays, it executes in waves of `arrays` ops.
    const std::size_t n = group.ops.size();
    std::size_t idx = 0;
    while (idx < n) {
      const std::size_t wave = std::min(sched.arrays, n - idx);
      const std::size_t per_op = std::max<std::size_t>(1, sched.arrays / wave);
      std::uint64_t wave_span = 0;
      for (std::size_t i = 0; i < wave; ++i) {
        const nn::GemmOp* op = group.ops[idx + i];
        OpEvents ev = count_op_events(*op, cfg);
        if (wavelength_availability < 1.0) {
          // Dead wavelengths shrink every reduction chunk, stretching the
          // same work over proportionally more cycles.
          const auto stretch = [wavelength_availability](std::uint64_t c) {
            return static_cast<std::uint64_t>(
                std::ceil(static_cast<double>(c) / wavelength_availability));
          };
          ev.tile_cycles = stretch(ev.tile_cycles);
          ev.ddot_cycles = stretch(ev.ddot_cycles);
        }
        const std::uint64_t span = (ev.tile_cycles + per_op - 1) / per_op;
        ScheduledOp s;
        s.label = op->label;
        s.op_class = op->op_class;
        s.stage = stage_of(*op);
        s.start_cycle = clock_cycle;
        s.end_cycle = clock_cycle + span;
        s.arrays_assigned = per_op;
        s.work_array_cycles = ev.tile_cycles;
        sched.busy_array_cycles += ev.tile_cycles;
        sched.busy_ddot_cycles += ev.ddot_cycles;
        wave_span = std::max(wave_span, span);
        sched.ops.push_back(std::move(s));
      }
      clock_cycle += wave_span;
      idx += wave;
    }
  }
  sched.makespan_cycles = clock_cycle;
  return sched;
}

}  // namespace

Schedule schedule_trace(const nn::WorkloadTrace& trace, const LtConfig& cfg) {
  PDAC_REQUIRE(cfg.arrays() >= 1, "schedule_trace: need at least one array");
  return schedule_on_pool(trace, cfg, cfg.arrays(), 1.0);
}

Schedule schedule_trace(const nn::WorkloadTrace& trace, const LtConfig& cfg,
                        const DegradedCapacity& degraded) {
  PDAC_REQUIRE(degraded.healthy_arrays >= 1 && degraded.healthy_arrays <= cfg.arrays(),
               "schedule_trace: healthy arrays must be in [1, pool size]");
  PDAC_REQUIRE(degraded.wavelength_availability > 0.0 &&
                   degraded.wavelength_availability <= 1.0,
               "schedule_trace: wavelength availability in (0, 1]");
  Schedule sched = schedule_on_pool(trace, cfg, degraded.healthy_arrays,
                                    degraded.wavelength_availability);
  // Tiles the full pool would have placed on now-fenced arrays; each one
  // re-stages its operands on a survivor (priced by the energy model).
  const double dead_fraction =
      1.0 - static_cast<double>(degraded.healthy_arrays) /
                static_cast<double>(cfg.arrays());
  if (dead_fraction > 0.0) {
    std::uint64_t total_tiles = 0;
    for (const auto& op : trace.gemms) {
      const std::uint64_t tiles_m = (op.m + cfg.array_rows - 1) / cfg.array_rows;
      const std::uint64_t tiles_n = (op.n + cfg.array_cols - 1) / cfg.array_cols;
      total_tiles += tiles_m * tiles_n * op.repeats;
    }
    sched.remapped_tiles = static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(total_tiles) * dead_fraction));
  }
  return sched;
}

std::string to_string(Stage s) {
  switch (s) {
    case Stage::kQkvProjection: return "qkv-proj";
    case Stage::kScores: return "scores";
    case Stage::kContext: return "context";
    case Stage::kOutputProjection: return "o-proj";
    case Stage::kFfnUp: return "ffn-up";
    case Stage::kFfnDown: return "ffn-down";
  }
  return "?";
}

}  // namespace pdac::arch
