// lt_config.hpp — the LT-B accelerator organization the paper evaluates
// against (Lightening-Transformer base configuration, §IV).
//
// The organization is parameterized so ablations can sweep it; the
// defaults are chosen so the derived unit counts match the calibration
// in DESIGN.md §5:
//   2 clusters × 8 cores, each core an 8×8 DDot array with 8 WDM
//   wavelengths per DDot →
//     modulator channels = 16 arrays · (8+8) operand lanes · 8 λ = 2048
//     ADC channels       = 16 arrays · 8 columns              = 128
//     peak MAC rate      = 16 · 64 DDots · 8 λ = 8192 MAC/cycle @ 5 GHz
#pragma once

#include <cstddef>

#include "common/units.hpp"

namespace pdac::arch {

struct LtConfig {
  std::size_t clusters{2};
  std::size_t cores_per_cluster{8};
  std::size_t array_rows{8};    ///< H: DDot rows per core
  std::size_t array_cols{8};    ///< W: DDot columns per core
  std::size_t wavelengths{8};   ///< WDM channels per DDot
  units::Frequency clock{units::gigahertz(5.0).hertz()};
  /// DDots time-sharing one output ADC (analog accumulation depth); with
  /// the default 8, a k=64 reduction produces exactly one ADC sample.
  std::size_t ddots_per_adc{8};

  [[nodiscard]] std::size_t arrays() const { return clusters * cores_per_cluster; }
  [[nodiscard]] std::size_t ddots() const { return arrays() * array_rows * array_cols; }
  /// Operand modulator channels (MZM + driver per channel): each array
  /// modulates H row-operands and W column-operands, one value per
  /// wavelength each cycle.
  [[nodiscard]] std::size_t modulator_channels() const {
    return arrays() * (array_rows + array_cols) * wavelengths;
  }
  [[nodiscard]] std::size_t adc_channels() const {
    return arrays() * array_rows * array_cols / ddots_per_adc;
  }
  [[nodiscard]] std::size_t macs_per_cycle() const { return ddots() * wavelengths; }
};

/// The paper's LT-B instance.
inline LtConfig lt_base() { return LtConfig{}; }

}  // namespace pdac::arch
