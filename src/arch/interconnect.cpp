#include "arch/interconnect.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace pdac::arch {

units::Time LinkMetrics::transfer_time(std::uint64_t bits) const {
  PDAC_REQUIRE(bandwidth_gbps > 0.0, "LinkMetrics: bandwidth must be positive");
  const double stream = static_cast<double>(bits) / (bandwidth_gbps * 1e9);
  return units::seconds(stream + latency.seconds());
}

LinkMetrics evaluate_link(const InterconnectConfig& cfg) {
  PDAC_REQUIRE(cfg.distance_mm >= 0.0, "evaluate_link: distance must be non-negative");
  LinkMetrics m;
  if (cfg.kind == LinkKind::kElectrical) {
    PDAC_REQUIRE(cfg.wires >= 1, "evaluate_link: at least one wire");
    m.energy_per_bit =
        units::picojoules(cfg.electrical_pj_per_bit_mm * cfg.distance_mm);
    m.bandwidth_gbps = cfg.electrical_gbps_per_wire * static_cast<double>(cfg.wires);
    m.latency = units::seconds(cfg.electrical_latency_ps_per_mm * cfg.distance_mm * 1e-12);
  } else {
    PDAC_REQUIRE(cfg.lambdas >= 1, "evaluate_link: at least one wavelength");
    // Conversion energy is distance-independent; transport is time of
    // flight in the waveguide.
    m.energy_per_bit =
        units::picojoules(cfg.eo_pj_per_bit + cfg.oe_pj_per_bit + cfg.laser_pj_per_bit);
    m.bandwidth_gbps = cfg.gbps_per_lambda * static_cast<double>(cfg.lambdas);
    constexpr double kSpeedOfLightMmPerS = 2.99792458e11;
    m.latency = units::seconds(cfg.distance_mm * cfg.group_index / kSpeedOfLightMmPerS);
  }
  return m;
}

double optical_crossover_mm(const InterconnectConfig& base) {
  // Electrical pJ/bit = k·d; optical pJ/bit is flat: crossover at
  // d = (eo + oe + laser) / k.
  PDAC_REQUIRE(base.electrical_pj_per_bit_mm > 0.0,
               "optical_crossover_mm: electrical energy slope must be positive");
  return (base.eo_pj_per_bit + base.oe_pj_per_bit + base.laser_pj_per_bit) /
         base.electrical_pj_per_bit_mm;
}

std::uint64_t distribution_bits(const nn::WorkloadTrace& trace, int bits) {
  PDAC_REQUIRE(bits >= 1, "distribution_bits: bits must be positive");
  std::uint64_t elements = 0;
  for (const auto& g : trace.gemms) {
    elements += g.weight_elements() + (g.static_weights ? g.activation_elements() : 0) +
                g.total_extra_movement_elements();
  }
  return elements * static_cast<std::uint64_t>(bits);
}

std::string to_string(LinkKind k) {
  return k == LinkKind::kElectrical ? "electrical" : "optical";
}

}  // namespace pdac::arch
