// interconnect.hpp — electrical vs optical operand-distribution links.
//
// The paper's introduction rests on photonic interconnects (SPRINT,
// SPACX, CAMON): the P-DAC's input data arrives as optical digital words
// precisely because the M2-SRAM-to-modulator distribution already uses
// WDM links (§III-B: "we can also utilize the WDM technique to
// pre-convert data from the memory side … thereby saving some energy").
// This module prices both link families:
//
//   electrical — energy grows linearly with distance (repeatered RC
//     wires, pJ/bit/mm), latency ~ RC per mm, bandwidth per wire is
//     pin/SerDes-limited;
//   optical — pay fixed EO + OE conversion plus link laser per bit,
//     distance-(almost)-free transport at light speed, and WDM stacks
//     many lambdas per waveguide.
//
// The A16 bench sweeps distance to expose the crossover the paper's
// motivation cites, and checks the calibrated SRAM-movement constant of
// the energy model against an explicit link budget.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "nn/workload_trace.hpp"

namespace pdac::arch {

enum class LinkKind { kElectrical, kOptical };

struct InterconnectConfig {
  LinkKind kind{LinkKind::kOptical};
  double distance_mm{10.0};

  // Electrical wire parameters.  Bandwidth is compared per physical
  // medium: one repeatered wire vs one WDM waveguide.
  double electrical_pj_per_bit_mm{0.25};  ///< repeatered on-chip wire
  double electrical_gbps_per_wire{10.0};
  std::size_t wires{1};
  double electrical_latency_ps_per_mm{66.0};  ///< ~15 ps/mm signal + repeaters

  // Optical link parameters.
  double eo_pj_per_bit{0.25};   ///< serializer + ring modulator drive
  double oe_pj_per_bit{0.25};   ///< PD + TIA + clocking
  double laser_pj_per_bit{0.2}; ///< link laser, wall-plug amortized
  double gbps_per_lambda{40.0};
  std::size_t lambdas{16};
  double group_index{4.2};
};

struct LinkMetrics {
  units::Energy energy_per_bit;
  double bandwidth_gbps{};
  units::Time latency;

  /// Energy to move `bits` across the link.
  [[nodiscard]] units::Energy transfer_energy(std::uint64_t bits) const {
    return units::joules(energy_per_bit.joules() * static_cast<double>(bits));
  }
  /// Time to stream `bits` (bandwidth-limited, plus one flight latency).
  [[nodiscard]] units::Time transfer_time(std::uint64_t bits) const;
};

/// Price one link instance.
LinkMetrics evaluate_link(const InterconnectConfig& cfg);

/// Distance (mm) beyond which the optical link is cheaper per bit than
/// the electrical one, holding everything else in `base` fixed.
double optical_crossover_mm(const InterconnectConfig& base);

/// Total operand-distribution traffic of a trace (the bits that must
/// cross the SRAM→modulator link), at the given operand width.
std::uint64_t distribution_bits(const nn::WorkloadTrace& trace, int bits);

std::string to_string(LinkKind k);

}  // namespace pdac::arch
