#include "arch/config_parser.hpp"

#include <cctype>
#include <sstream>

#include "common/require.hpp"

namespace pdac::arch {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

[[noreturn]] void fail(int line, const std::string& msg) {
  throw PreconditionError("config line " + std::to_string(line) + ": " + msg);
}

double parse_number(const std::string& value, int line) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(value, &used);
  } catch (const std::exception&) {
    fail(line, "expected a number, got '" + value + "'");
  }
  if (used != value.size()) fail(line, "trailing junk after number: '" + value + "'");
  return v;
}

std::size_t parse_count(const std::string& value, int line) {
  const double v = parse_number(value, line);
  if (v < 1.0 || v != static_cast<double>(static_cast<std::size_t>(v))) {
    fail(line, "expected a positive integer, got '" + value + "'");
  }
  return static_cast<std::size_t>(v);
}

}  // namespace

AcceleratorConfig parse_accelerator_config(const std::string& text) {
  AcceleratorConfig cfg;
  std::istringstream in(text);
  std::string raw;
  std::string section;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto comment = raw.find_first_of("#;");
    std::string line = trim(comment == std::string::npos ? raw : raw.substr(0, comment));
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') fail(line_no, "unterminated section header");
      section = trim(line.substr(1, line.size() - 2));
      if (section != "organization" && section != "memory" && section != "system") {
        fail(line_no, "unknown section '" + section + "'");
      }
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string::npos) fail(line_no, "expected 'key = value'");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (section.empty()) fail(line_no, "key '" + key + "' outside any section");

    if (section == "organization") {
      if (key == "clusters") {
        cfg.organization.clusters = parse_count(value, line_no);
      } else if (key == "cores_per_cluster") {
        cfg.organization.cores_per_cluster = parse_count(value, line_no);
      } else if (key == "array_rows") {
        cfg.organization.array_rows = parse_count(value, line_no);
      } else if (key == "array_cols") {
        cfg.organization.array_cols = parse_count(value, line_no);
      } else if (key == "wavelengths") {
        cfg.organization.wavelengths = parse_count(value, line_no);
      } else if (key == "ddots_per_adc") {
        cfg.organization.ddots_per_adc = parse_count(value, line_no);
      } else if (key == "clock_ghz") {
        const double ghz = parse_number(value, line_no);
        if (ghz <= 0.0) fail(line_no, "clock must be positive");
        cfg.organization.clock = units::gigahertz(ghz);
      } else {
        fail(line_no, "unknown organization key '" + key + "'");
      }
    } else if (section == "memory") {
      if (key == "hbm_gb_s") {
        cfg.memory.hbm_bandwidth_gb_s = parse_number(value, line_no);
      } else if (key == "sram_gb_s") {
        cfg.memory.sram_bandwidth_gb_s = parse_number(value, line_no);
      } else {
        fail(line_no, "unknown memory key '" + key + "'");
      }
    } else {  // system
      if (key == "bits") {
        const double b = parse_number(value, line_no);
        if (b < 2 || b > 16) fail(line_no, "bits must be in [2, 16]");
        cfg.bits = static_cast<int>(b);
      } else {
        fail(line_no, "unknown system key '" + key + "'");
      }
    }
  }
  return cfg;
}

std::string to_config_text(const AcceleratorConfig& cfg) {
  std::ostringstream os;
  os << "[organization]\n"
     << "clusters = " << cfg.organization.clusters << "\n"
     << "cores_per_cluster = " << cfg.organization.cores_per_cluster << "\n"
     << "array_rows = " << cfg.organization.array_rows << "\n"
     << "array_cols = " << cfg.organization.array_cols << "\n"
     << "wavelengths = " << cfg.organization.wavelengths << "\n"
     << "ddots_per_adc = " << cfg.organization.ddots_per_adc << "\n"
     << "clock_ghz = " << cfg.organization.clock.gigahertz() << "\n"
     << "[memory]\n"
     << "hbm_gb_s = " << cfg.memory.hbm_bandwidth_gb_s << "\n"
     << "sram_gb_s = " << cfg.memory.sram_bandwidth_gb_s << "\n"
     << "[system]\n"
     << "bits = " << cfg.bits << "\n";
  return os.str();
}

}  // namespace pdac::arch
