#include "arch/accelerator.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace pdac::arch {

units::Time InferenceReport::runtime(const LtConfig& cfg) const {
  const double compute = schedule.runtime(cfg.clock).seconds();
  const double memory =
      std::max(roofline.hbm_time.seconds(), roofline.sram_time.seconds());
  return units::seconds(std::max(compute, memory));
}

double InferenceReport::throughput(const LtConfig& cfg) const {
  const double t = runtime(cfg).seconds();
  return t > 0.0 ? 1.0 / t : 0.0;
}

Accelerator::Accelerator(AcceleratorConfig cfg) : cfg_(cfg) {
  PDAC_REQUIRE(cfg_.bits >= 2 && cfg_.bits <= 16, "Accelerator: bits in [2, 16]");
  PDAC_REQUIRE(cfg_.organization.arrays() >= 1, "Accelerator: needs at least one array");
}

InferenceReport Accelerator::run(const nn::WorkloadTrace& trace) const {
  InferenceReport rep{
      compare_energy(trace, cfg_.organization, cfg_.power, cfg_.bits),
      schedule_trace(trace, cfg_.organization),
      roofline_runtime(trace, cfg_.organization, cfg_.memory, cfg_.bits),
      summarize_traffic(trace, cfg_.bits),
      stalled_energy(trace, cfg_.organization, cfg_.power, cfg_.memory, cfg_.bits)};
  return rep;
}

PowerBreakdown Accelerator::power(SystemVariant variant) const {
  return compute_power_breakdown(cfg_.organization, cfg_.power, cfg_.bits, variant);
}

}  // namespace pdac::arch
