// sram.hpp — the shared M2 SRAM the accelerator streams operands from
// (paper Fig. 6: "we leverage the high data rate of optical
// interconnections to efficiently propagate data from the shared M2
// SRAM").
//
// The energy model charges every weight element fetched and every
// activation element staged through this memory.  Capacity bookkeeping
// lets examples check that a workload's working set actually fits the
// configured buffer, and the access counters feed the movement-energy
// term of Figs. 9–10.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace pdac::arch {

struct SramConfig {
  std::uint64_t capacity_bytes{8ull * 1024 * 1024};  ///< shared M2 buffer
  units::Energy energy_per_bit{units::picojoules(9.63).joules()};
  units::Power leakage{units::watts(0.0)};  ///< folded into receivers+digital
};

class Sram {
 public:
  explicit Sram(SramConfig cfg);

  /// Charge a read of `bits` bits; returns the energy spent.
  units::Energy read(std::uint64_t bits);
  /// Charge a write of `bits` bits; returns the energy spent.
  units::Energy write(std::uint64_t bits);

  [[nodiscard]] std::uint64_t bits_read() const { return bits_read_; }
  [[nodiscard]] std::uint64_t bits_written() const { return bits_written_; }
  [[nodiscard]] units::Energy total_energy() const;

  /// True when a working set of `bytes` fits the configured capacity.
  [[nodiscard]] bool fits(std::uint64_t bytes) const;

  [[nodiscard]] const SramConfig& config() const { return cfg_; }

 private:
  SramConfig cfg_;
  std::uint64_t bits_read_{0};
  std::uint64_t bits_written_{0};
};

}  // namespace pdac::arch
