#include "arch/component_power.hpp"

#include <cmath>

#include "common/require.hpp"
#include "converters/electrical_adc.hpp"
#include "converters/electrical_dac.hpp"
#include "core/pdac.hpp"

namespace pdac::arch {

units::Power PowerBreakdown::total() const {
  units::Power sum{};
  for (const auto& part : parts) sum += part.power;
  return sum;
}

units::Power PowerBreakdown::power(Component c) const {
  for (const auto& part : parts) {
    if (part.component == c) return part.power;
  }
  return units::Power{};
}

double PowerBreakdown::share(Component c) const {
  const double t = total().watts();
  return t > 0.0 ? power(c).watts() / t : 0.0;
}

units::Power laser_power(const PowerParams& p, int bits) {
  PDAC_REQUIRE(bits >= 1, "laser_power: bits must be positive");
  const double scale = std::exp2(p.laser_bit_exponent * (static_cast<double>(bits) - 4.0));
  return units::watts(p.laser_base.watts() * scale);
}

units::Power dac_unit_power(const PowerParams& p, int bits) {
  // Delegate to the converter library's law so the device model and the
  // architecture model can never diverge.
  return converters::ElectricalDac::power_model(bits, units::gigahertz(5.0),
                                                p.dac_kappa_watts, units::gigahertz(5.0));
}

units::Power adc_unit_power(const PowerParams& p, int bits) {
  return converters::ElectricalAdc::power_model(bits, units::gigahertz(5.0),
                                                p.adc_per_bit_watts, units::gigahertz(5.0));
}

units::Power pdac_unit_power(const PowerParams& p, int bits) {
  return core::Pdac::power_model(bits, p.pdac_pd_ring_per_bit, p.pdac_tia_gain_unit,
                                 units::watts(0.0));
}

units::Power controller_power(const PowerParams& p, int bits) {
  PDAC_REQUIRE(bits >= 1, "controller_power: bits must be positive");
  return units::watts(p.controller_kappa_watts *
                      std::pow(static_cast<double>(bits), p.controller_bit_exponent));
}

units::Power receiver_digital_power(const PowerParams& p, int bits) {
  return units::watts(p.receiver_digital_per_bit_watts * static_cast<double>(bits));
}

PowerBreakdown compute_power_breakdown(const LtConfig& cfg, const PowerParams& p, int bits,
                                       SystemVariant variant) {
  PDAC_REQUIRE(bits >= 2 && bits <= 16, "compute_power_breakdown: bits in [2, 16]");
  const double n_mod = static_cast<double>(cfg.modulator_channels());
  const double n_adc = static_cast<double>(cfg.adc_channels());

  PowerBreakdown b;
  b.variant = variant;
  b.bits = bits;
  b.parts.push_back({Component::kLaser, laser_power(p, bits)});
  if (variant == SystemVariant::kDacBased) {
    b.parts.push_back({Component::kDac, n_mod * dac_unit_power(p, bits)});
    b.parts.push_back({Component::kController, controller_power(p, bits)});
  } else {
    b.parts.push_back({Component::kPdac, n_mod * pdac_unit_power(p, bits)});
  }
  b.parts.push_back({Component::kAdc, n_adc * adc_unit_power(p, bits)});
  b.parts.push_back({Component::kThermal, p.thermal_tuning});
  b.parts.push_back({Component::kReceiverDigital, receiver_digital_power(p, bits)});
  return b;
}

std::string to_string(Component c) {
  switch (c) {
    case Component::kLaser: return "laser";
    case Component::kDac: return "DAC";
    case Component::kPdac: return "P-DAC";
    case Component::kAdc: return "ADC";
    case Component::kController: return "controller";
    case Component::kThermal: return "thermal-tuning";
    case Component::kReceiverDigital: return "receivers+digital";
  }
  return "?";
}

std::string to_string(SystemVariant v) {
  return v == SystemVariant::kDacBased ? "DAC-based" : "P-DAC-based";
}

}  // namespace pdac::arch
