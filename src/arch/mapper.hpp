// mapper.hpp — dependency-aware scheduling of a transformer trace onto
// the accelerator's core pool.
//
// The energy model charges occupancy assuming tiles pack perfectly onto
// all arrays.  Real execution has structure: inside one encoder layer
// the Q/K/V projections are independent, but Q·Kᵀ needs Q and K, A·V
// needs the scores, the output projection needs A·V, and the FFN follows
// — and layers chain sequentially.  The mapper schedules each dependency
// stage across the core pool, yielding the makespan, the per-stage
// timeline, and the array utilization — i.e. how much of the Fig. 11
// compute-bound power is actually put to work on a given model, and how
// much is pipeline bubble.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/lt_config.hpp"
#include "common/units.hpp"
#include "nn/workload_trace.hpp"

namespace pdac::arch {

/// Dependency stage of an op inside its layer (execution order).
enum class Stage : int {
  kQkvProjection = 0,  ///< Q/K/V projections — mutually independent
  kScores = 1,         ///< Q·Kᵀ
  kContext = 2,        ///< A·V
  kOutputProjection = 3,
  kFfnUp = 4,
  kFfnDown = 5,
};

struct ScheduledOp {
  std::string label;
  nn::OpClass op_class{nn::OpClass::kAttention};
  Stage stage{Stage::kQkvProjection};
  std::uint64_t start_cycle{};
  std::uint64_t end_cycle{};
  std::size_t arrays_assigned{};
  std::uint64_t work_array_cycles{};  ///< total array-cycles of the op
};

struct Schedule {
  std::vector<ScheduledOp> ops;
  std::uint64_t makespan_cycles{};
  std::uint64_t busy_array_cycles{};
  std::uint64_t busy_ddot_cycles{};
  std::size_t arrays{};
  std::size_t ddots_per_array{};
  /// Tiles displaced off fenced arrays onto survivors (0 when scheduling
  /// the full pool).  The energy model charges their operand re-staging
  /// (arch::recalibration_energy).
  std::uint64_t remapped_tiles{};

  /// busy / (arrays × makespan): 1.0 means no pipeline bubbles.
  [[nodiscard]] double utilization() const;
  /// DDot-granular utilization: also counts intra-array waste from
  /// ragged tiles (a 1-row GEMV tile keeps 1/H of an array busy).
  [[nodiscard]] double ddot_utilization() const;
  [[nodiscard]] units::Time runtime(units::Frequency clock) const;
  /// Ideal (perfect-packing) cycle count the energy model assumes.
  [[nodiscard]] std::uint64_t ideal_cycles() const;
  /// makespan / ideal: the pipeline-bubble slowdown factor.
  [[nodiscard]] double slowdown() const;
};

/// Classify an op's stage from its trace label.
Stage stage_of(const nn::GemmOp& op);

/// Schedule the trace on `cfg`'s core pool.  Ops of the same stage in the
/// same layer run concurrently, splitting the arrays evenly; stages and
/// layers execute in dependency order.
Schedule schedule_trace(const nn::WorkloadTrace& trace, const LtConfig& cfg);

/// Capacity surviving a fault event, as reported by the self-test: whole
/// arrays fenced off, and the surviving arrays running on a reduced set
/// of WDM channels.
struct DegradedCapacity {
  std::size_t healthy_arrays{};          ///< 0 < healthy ≤ cfg.arrays()
  double wavelength_availability{1.0};   ///< usable/total channels, (0, 1]
};

/// Schedule onto the degraded pool: tiles that would have landed on
/// fenced arrays are remapped to survivors, and every reduction stretches
/// by 1/availability because dead wavelengths shrink the chunk size.
/// Identical to the two-argument overload when nothing is degraded.
Schedule schedule_trace(const nn::WorkloadTrace& trace, const LtConfig& cfg,
                        const DegradedCapacity& degraded);

std::string to_string(Stage s);

}  // namespace pdac::arch
