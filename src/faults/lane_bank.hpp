// lane_bank.hpp — the pool of P-DAC modulator lanes faults act on.
//
// A DDot channel needs two modulators — one on the x rail, one on the y
// rail — so a core with W wavelengths carries 2·W lanes.  Each lane is
// its own fabricated device instance (a PerturbedPdacModel drawn from
// the static-variation distribution) plus a runtime fault overlay
// (core/fault_hook.hpp) and a fence bit the self-test sets when it gives
// a lane up for dead.  A WDM channel is usable only when *both* of its
// rail lanes are un-fenced.
#pragma once

#include <cstdint>
#include <vector>

#include "converters/quantizer.hpp"
#include "core/variation.hpp"

namespace pdac::faults {

struct LaneBankConfig {
  core::PdacConfig pdac{};
  /// Static fabrication spread of the lane devices (seed included);
  /// all-zero sigmas give nominal lanes.
  core::VariationConfig variation{};
  std::size_t wavelengths{8};
};

struct Lane {
  core::PerturbedPdacModel model;
  core::PdacFaultHook hook{};  ///< injector-owned copy, mirrored into the model
  bool fenced{false};          ///< self-test verdict: lane is dead, do not use

  explicit Lane(core::PerturbedPdacModel m) : model(std::move(m)) {}
};

class LaneBank;

/// Factory calibration: gain-trim every lane (core::trim_pdac) the way
/// production test would, so fabrication variation starts inside the
/// error budget.  Runtime faults injected afterwards land on a trimmed
/// device — exactly the state the self-test's re-trim tries to restore.
void production_trim(LaneBank& bank);

class LaneBank {
 public:
  static constexpr std::size_t kRails = 2;  ///< x rail and y rail

  explicit LaneBank(const LaneBankConfig& cfg);

  [[nodiscard]] std::size_t wavelengths() const { return cfg_.wavelengths; }
  [[nodiscard]] std::size_t lanes() const { return lanes_.size(); }
  [[nodiscard]] int bits() const { return cfg_.pdac.bits; }

  [[nodiscard]] Lane& lane(std::size_t flat) { return lanes_.at(flat); }
  [[nodiscard]] const Lane& lane(std::size_t flat) const { return lanes_.at(flat); }
  [[nodiscard]] Lane& lane(std::size_t rail, std::size_t channel) {
    return lanes_.at(rail * cfg_.wavelengths + channel);
  }
  [[nodiscard]] const Lane& lane(std::size_t rail, std::size_t channel) const {
    return lanes_.at(rail * cfg_.wavelengths + channel);
  }

  /// Encode a normalized value through one lane: quantize to the lane's
  /// bit width, then run the (possibly faulty) device.
  [[nodiscard]] double encode(std::size_t rail, std::size_t channel, double r) const;

  /// Channel usability mask: channel ch is usable iff neither rail lane
  /// is fenced.  Shape matches ptc::DotEngineConfig::lane_mask.
  [[nodiscard]] std::vector<std::uint8_t> channel_mask() const;
  [[nodiscard]] std::size_t usable_channels() const;
  [[nodiscard]] std::size_t fenced_lanes() const;

  /// Encode-state epoch: a monotonic stamp every mutator of lane state
  /// (fault injection, re-trim/recalibration, production trim, fencing)
  /// bumps, so prepared-operand caches built against this bank can
  /// detect stale encodings (DESIGN.md §10).  Code that mutates lanes
  /// directly through lane() must call bump_epoch() afterwards; the
  /// degraded backend additionally snapshots channel packing per product
  /// as a belt-and-braces check against missed fence bumps.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  void bump_epoch() { ++epoch_; }

  [[nodiscard]] const LaneBankConfig& config() const { return cfg_; }
  [[nodiscard]] const converters::Quantizer& quantizer() const { return quant_; }

 private:
  LaneBankConfig cfg_;
  converters::Quantizer quant_;
  std::vector<Lane> lanes_;
  std::uint64_t epoch_{0};
};

}  // namespace pdac::faults
