// escalation.hpp — bounded recovery ladder for ABFT guard mismatches.
//
// When the checksum guard (ptc/abft.hpp) flags a tile, something between
// the modulators and the ADC produced a sum the controller's digital
// reference disagrees with.  The right response depends on the fault
// class, which the controller cannot observe directly — so the policy
// walks a fixed ladder from cheapest to most drastic, spending each rung
// at most a configured number of times per product:
//
//   kRetry   re-encode and re-run the tile through the live lanes.
//            Clears transients (SEU-class glitches) for the cost of one
//            tile step; persistent faults fail again immediately.
//   kRetrim  targeted self-test over the lanes the product actually
//            uses (faults/self_test.hpp): drift-class faults (bias walk,
//            TIA gain steps) calibrate out, and the guard's golden
//            references are re-snapshotted to the freshly trusted state.
//   kFence   the self-test fenced what it could not fix — re-pack the
//            reduction onto the surviving channels and re-run the
//            product degraded (fewer channels, more chunks, honest
//            event charge).
//   kGiveUp  ladder exhausted; the product is returned best-effort and
//            the health monitor records it as unrecovered.
//
// The policy is a pure function of the per-product EscalationState, so
// recovery is deterministic and unit-testable without hardware.
#pragma once

#include <cstddef>
#include <string>

#include "faults/self_test.hpp"

namespace pdac::faults {

enum class GuardAction {
  kAccept,  ///< tile verified; nothing to do
  kRetry,
  kRetrim,
  kFence,
  kGiveUp,
};

struct EscalationConfig {
  std::size_t max_retries{1};  ///< retry rungs per product
  std::size_t max_retrims{1};  ///< targeted self-test rungs per product
  bool allow_fence{true};      ///< permit the degraded re-run rung
  /// BIST configuration for the kRetrim rung.
  SelfTestConfig self_test{};

  // -- drift-hysteresis governor (DESIGN.md §16) ----------------------
  /// Re-trim *proactively* at product entry when the backend's
  /// DriftTracker reports an excursion lane — recovery fires off the
  /// critical tile path, before the guard has to catch anything.  Off by
  /// default: the reactive ladder alone reproduces pre-drift behavior.
  bool proactive_retrim{false};
  /// Products that must pass after any re-trim before a *proactive*
  /// re-trim may fire again — the hysteresis dwell that stops oscillating
  /// drift from re-trimming every product.  Reactive (ladder) re-trims
  /// are never cooldown-blocked: a guard mismatch is real now.
  std::size_t retrim_cooldown_products{0};
  /// Windowed re-trim governor over proactive AND reactive re-trims: at
  /// most `window_retrims` re-trims per `window_products` products; once
  /// spent, the ladder falls through to fence/give-up and proactive
  /// requests are deferred (HealthSnapshot::governed_retrims counts
  /// both).  window_products == 0 disables the governor.
  std::size_t window_retrims{0};
  std::size_t window_products{0};
};

/// Rungs already burned while recovering the current product.
struct EscalationState {
  std::size_t retries{0};
  std::size_t retrims{0};
  std::size_t fences{0};  ///< degraded re-runs (at most 1 is ever useful)
};

class EscalationPolicy {
 public:
  explicit EscalationPolicy(EscalationConfig cfg = {}) : cfg_(cfg) {}

  /// Next rung for a still-mismatching tile given what was already
  /// spent.  Deterministic: retry while retries remain, then re-trim,
  /// then fence, then give up.  `retrim_available` is the windowed
  /// governor's verdict (guarded_backend.hpp): false skips the re-trim
  /// rung exactly like an exhausted max_retrims, so the ladder degrades
  /// instead of stalling.
  [[nodiscard]] GuardAction next(const EscalationState& state,
                                 bool retrim_available = true) const;

  [[nodiscard]] const EscalationConfig& config() const { return cfg_; }

 private:
  EscalationConfig cfg_;
};

std::string to_string(GuardAction action);

}  // namespace pdac::faults
