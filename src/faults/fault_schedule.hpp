// fault_schedule.hpp — deterministic, seeded runtime-fault event plans.
//
// The A6 Monte-Carlo (core/variation.hpp) answers "how bad is a device as
// fabricated"; this module answers "what breaks while the accelerator is
// serving".  A schedule is a list of discrete fault events on a pool of
// modulator lanes — stuck MRR modulators, dead or degraded receive
// photodetectors, TIA gain step-faults, bias jumps — plus the parameters
// of two continuous processes the injector integrates between events:
// a per-bank bias random walk (thermal drift) and laser power droop.
//
// Everything is a pure function of the seed: the same config replays the
// identical fault history, which is what makes fault experiments
// debuggable and the ablation reproducible (tests pin this down).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pdac::faults {

enum class FaultKind : int {
  kStuckMrr,     ///< modulator ring latches; output pinned, code ignored
  kDeadPd,       ///< one per-bit receive PD dies (bit contributes nothing)
  kDegradedPd,   ///< receive-PD responsivity derates on the whole lane
  kTiaGainStep,  ///< one TIA weight steps by a factor (drift-class)
  kBiasStep,     ///< a one-off bank bias jump (drift-class)
};

/// True for faults no amount of re-trimming can calibrate out.
[[nodiscard]] bool is_hard_fault(FaultKind kind);

struct FaultEvent {
  std::uint64_t step{};   ///< injection time on the schedule clock
  FaultKind kind{FaultKind::kStuckMrr};
  std::size_t lane{};     ///< flat lane index in the bank
  double magnitude{};     ///< kind-specific: stuck amplitude, derate/gain factor, bias jump [rad]
  int bit{-1};            ///< kDeadPd/kTiaGainStep: affected bit position
  int segment{1};         ///< kTiaGainStep/kBiasStep: bank index (0/1/2)
};

struct FaultScheduleConfig {
  std::size_t lanes{16};
  int bits{8};  ///< lane bit width (bounds the bit index of PD/TIA faults)
  std::uint64_t horizon_steps{64};
  /// Probability a lane suffers a hard fault (stuck MRR or dead PD)
  /// somewhere in the horizon — the ablation's headline "fault rate".
  double hard_fault_rate{0.0};
  /// Probability of a drift-class event (gain step, bias jump, PD
  /// derate) per lane over the horizon.
  double drift_fault_rate{0.0};
  /// Continuous bias random walk: per-step σ added to every bank bias.
  double bias_walk_sigma_per_step{0.0};
  /// Laser droop: fractional optical power lost per step (accumulates
  /// multiplicatively across the horizon).
  double laser_droop_per_step{0.0};
  std::uint64_t seed{1};
};

struct FaultSchedule {
  FaultScheduleConfig cfg{};
  std::vector<FaultEvent> events;  ///< sorted by (step, lane)
};

/// Draw a schedule; identical (cfg) inputs yield identical schedules.
[[nodiscard]] FaultSchedule generate_fault_schedule(const FaultScheduleConfig& cfg);

[[nodiscard]] std::string to_string(FaultKind kind);
/// One-line debug rendering of an event.
[[nodiscard]] std::string to_string(const FaultEvent& ev);

}  // namespace pdac::faults
