// fault_injector.hpp — replays a FaultSchedule onto a LaneBank.
//
// The injector is the only writer of runtime fault state.  Discrete
// events flow into the device models through their fault hooks: hard
// faults set the lane's PdacFaultHook (stuck output, dead PD bits),
// drift-class faults are written into the TIA banks through
// apply_correction() — the same port the trimming loop uses, which is
// precisely why a re-trim can undo them.  Between events the injector
// integrates two continuous processes: a per-bank bias random walk
// (thermal drift) and multiplicative laser power droop applied to every
// lane's carrier.
//
// Determinism: the walk draws from its own Rng (derived from the
// schedule seed, decorrelated from the schedule generator), and the
// number of draws per step is a pure function of the schedule config —
// so two injectors replaying the same schedule onto identically seeded
// banks see bit-identical lane states at identical steps.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "faults/fault_schedule.hpp"
#include "faults/lane_bank.hpp"

namespace pdac::faults {

class FaultInjector {
 public:
  FaultInjector(LaneBank& bank, FaultSchedule schedule);

  /// Apply every event with step in (current, step] plus `step − current`
  /// iterations of the continuous drift processes.  Monotonic: the
  /// schedule clock never rewinds.
  void advance_to(std::uint64_t step);

  [[nodiscard]] std::uint64_t step() const { return now_; }
  [[nodiscard]] std::size_t events_applied() const { return next_event_; }
  /// Accumulated laser power scale (1 = nominal, falls with droop).
  [[nodiscard]] double laser_power_scale() const { return laser_scale_; }
  [[nodiscard]] const FaultSchedule& schedule() const { return schedule_; }

 private:
  void apply(const FaultEvent& ev);

  LaneBank& bank_;
  FaultSchedule schedule_;
  Rng walk_rng_;
  std::size_t next_event_{0};
  std::uint64_t now_{0};
  double laser_scale_{1.0};
};

}  // namespace pdac::faults
