// degraded_backend.hpp — GEMM execution through a faulty lane bank.
//
// PhotonicBackend (nn/backend.hpp) drives one representative P-DAC for
// every modulator; that is the right abstraction for accuracy ablations
// where all lanes are statistically identical.  Fault studies break that
// symmetry: each lane is its own fabricated instance carrying its own
// fault overlay, and some lanes are fenced entirely.  This backend
// encodes every operand element through the specific lane device that
// would carry it — x-rail lane for A elements, y-rail lane for B
// elements — packing reductions onto the surviving WDM channels only.
// Fewer survivors mean more chunks per reduction, which the event
// counter reports as honest throughput loss.
//
// The bank is referenced, not owned: the injector keeps mutating it
// between matmuls, so the degradation the model sees tracks the fault
// timeline with no copying.
//
// Weight-stationary reuse (DESIGN.md §10): matmul_cached keeps prepared
// B-side encodings in an operand cache, validated against TWO freshness
// signals — the bank's epoch (bumped by the injector, self-test re-trim
// and production trim) and a per-product snapshot of the surviving
// channel packing (which catches fences applied directly to lanes
// without an epoch bump).  A mismatch on either forces a re-encode, so
// decode loops never run a token through pre-fault encodings.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "faults/lane_bank.hpp"
#include "faults/lane_table.hpp"
#include "nn/backend.hpp"

namespace pdac::faults {

struct DegradedBackendConfig {
  /// Tile geometry used for event accounting (matches ptc::GemmConfig).
  std::size_t array_rows{8};
  std::size_t array_cols{8};
  /// Simulation workers for the tile dispatch (same semantics as
  /// ptc::GemmConfig::threads): 1 = serial, 0 = auto.  Lane devices are
  /// only read during a matmul (the injector mutates them *between*
  /// products), so workers share the bank safely; results are
  /// bit-identical at any thread count.
  std::size_t threads{1};
  /// Weight-stationary operand cache for matmul_cached products.
  nn::OperandCacheConfig cache{};
  /// Serve per-lane encodes from an epoch-keyed coefficient table
  /// (lane_table.hpp) instead of evaluating the lane model per element.
  /// Bit-identical either way (a test pins it); off only for A/B checks.
  bool use_lane_table{true};
};

class DegradedBackend final : public nn::GemmBackend {
 public:
  explicit DegradedBackend(const LaneBank& bank, DegradedBackendConfig cfg = {});

  /// Multiply through the surviving lanes.  With every channel fenced
  /// the accelerator is offline: the result is all zeros and no events
  /// are counted — callers see the outage in both accuracy and cycles.
  [[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b) override;

  /// Same product with the B-side encoding cached across calls; results
  /// are bit-identical to matmul(a, b) under the current bank state.
  [[nodiscard]] Matrix matmul_cached(const Matrix& a, const Matrix& b,
                                     const nn::WeightHandle& weight) override;

  [[nodiscard]] std::string name() const override { return "photonic-degraded"; }

  [[nodiscard]] const LaneBank& bank() const { return bank_; }
  [[nodiscard]] const nn::OperandCache* operand_cache() const override { return &cache_; }
  [[nodiscard]] nn::OperandCache& cache() { return cache_; }

 private:
  /// Usable channels under the current fence state, in packing order.
  [[nodiscard]] std::vector<std::size_t> surviving_channels() const;

  /// Per-lane encode through the coefficient table (when enabled and
  /// fresh) or the lane model — bit-identical values either way.
  [[nodiscard]] double encode_lane(std::size_t rail, std::size_t channel, double r) const;

  /// B-side pipeline through the lane devices: scale, transpose,
  /// normalize, per-lane encode.  `channels` fixes the packing.
  [[nodiscard]] ptc::PreparedOperand prepare_b(const Matrix& b,
                                               std::vector<std::size_t> channels);

  /// A-side pipeline + tile-parallel reduction against a prepared B.
  [[nodiscard]] Matrix run_prepared(const Matrix& a, const ptc::PreparedOperand& pb);

  void count_events(std::size_t m, std::size_t k, std::size_t n,
                    std::size_t usable_channels);

  const LaneBank& bank_;
  DegradedBackendConfig cfg_;
  std::unique_ptr<ThreadPool> pool_;
  nn::OperandCache cache_;
  /// Current-state lane coefficients, rebuilt on LaneBank epoch bumps at
  /// product entry (the injector mutates between products, never inside).
  LaneEncodeTable table_;
};

}  // namespace pdac::faults
