// degraded_backend.hpp — GEMM execution through a faulty lane bank.
//
// PhotonicBackend (nn/backend.hpp) drives one representative P-DAC for
// every modulator; that is the right abstraction for accuracy ablations
// where all lanes are statistically identical.  Fault studies break that
// symmetry: each lane is its own fabricated instance carrying its own
// fault overlay, and some lanes are fenced entirely.  This backend
// encodes every operand element through the specific lane device that
// would carry it — x-rail lane for A elements, y-rail lane for B
// elements — packing reductions onto the surviving WDM channels only.
// Fewer survivors mean more chunks per reduction, which the event
// counter reports as honest throughput loss.
//
// The bank is referenced, not owned: the injector keeps mutating it
// between matmuls, so the degradation the model sees tracks the fault
// timeline with no copying.
#pragma once

#include <cstddef>
#include <memory>

#include "common/thread_pool.hpp"
#include "faults/lane_bank.hpp"
#include "nn/backend.hpp"

namespace pdac::faults {

struct DegradedBackendConfig {
  /// Tile geometry used for event accounting (matches ptc::GemmConfig).
  std::size_t array_rows{8};
  std::size_t array_cols{8};
  /// Simulation workers for the tile dispatch (same semantics as
  /// ptc::GemmConfig::threads): 1 = serial, 0 = auto.  Lane devices are
  /// only read during a matmul (the injector mutates them *between*
  /// products), so workers share the bank safely; results are
  /// bit-identical at any thread count.
  std::size_t threads{1};
};

class DegradedBackend final : public nn::GemmBackend {
 public:
  explicit DegradedBackend(const LaneBank& bank, DegradedBackendConfig cfg = {});

  /// Multiply through the surviving lanes.  With every channel fenced
  /// the accelerator is offline: the result is all zeros and no events
  /// are counted — callers see the outage in both accuracy and cycles.
  [[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b) override;
  [[nodiscard]] std::string name() const override { return "photonic-degraded"; }

  [[nodiscard]] const LaneBank& bank() const { return bank_; }

 private:
  void count_events(std::size_t m, std::size_t k, std::size_t n,
                    std::size_t usable_channels);

  const LaneBank& bank_;
  DegradedBackendConfig cfg_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace pdac::faults
