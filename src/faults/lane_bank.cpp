#include "faults/lane_bank.hpp"

#include "common/math_utils.hpp"
#include "common/require.hpp"
#include "core/trimming.hpp"

namespace pdac::faults {

void production_trim(LaneBank& bank) {
  for (std::size_t i = 0; i < bank.lanes(); ++i) {
    core::trim_pdac(bank.lane(i).model);
  }
  bank.bump_epoch();  // trimmed devices encode differently
}

LaneBank::LaneBank(const LaneBankConfig& cfg) : cfg_(cfg), quant_(cfg.pdac.bits) {
  PDAC_REQUIRE(cfg_.wavelengths >= 1, "LaneBank: at least one wavelength");
  Rng rng(cfg_.variation.seed);
  lanes_.reserve(kRails * cfg_.wavelengths);
  for (std::size_t i = 0; i < kRails * cfg_.wavelengths; ++i) {
    lanes_.emplace_back(core::PerturbedPdacModel(cfg_.pdac, cfg_.variation, rng));
  }
}

double LaneBank::encode(std::size_t rail, std::size_t channel, double r) const {
  const Lane& ln = lane(rail, channel);
  return ln.model.encode_code(quant_.encode(math::clamp_unit(r)));
}

std::vector<std::uint8_t> LaneBank::channel_mask() const {
  std::vector<std::uint8_t> mask(cfg_.wavelengths, 1u);
  for (std::size_t ch = 0; ch < cfg_.wavelengths; ++ch) {
    if (lane(0, ch).fenced || lane(1, ch).fenced) mask[ch] = 0u;
  }
  return mask;
}

std::size_t LaneBank::usable_channels() const {
  std::size_t n = 0;
  for (std::size_t ch = 0; ch < cfg_.wavelengths; ++ch) {
    if (!lane(0, ch).fenced && !lane(1, ch).fenced) ++n;
  }
  return n;
}

std::size_t LaneBank::fenced_lanes() const {
  std::size_t n = 0;
  for (const Lane& ln : lanes_) n += ln.fenced ? 1u : 0u;
  return n;
}

}  // namespace pdac::faults
