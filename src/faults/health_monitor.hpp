// health_monitor.hpp — fleet-health aggregation for the ABFT guard.
//
// One monitor rides along a guarded backend and accumulates everything
// operations would page on: how many products/tiles were verified, how
// many mismatched, how far into a product the first corruption was
// caught (detection latency, in tiles), which recovery rungs fired, and
// which lanes the escalation self-tests found over budget.  The two
// event counters keep the overhead honest and separable: checksum_events
// is the pure guard charge (spare row/column lanes), retry_events is the
// data-path work re-executed by recovery — arch::event_energy prices
// both, and eval::report renders the summary.
#pragma once

#include <cstddef>
#include <vector>

#include "faults/escalation.hpp"
#include "ptc/abft.hpp"
#include "ptc/event_counter.hpp"

namespace pdac::faults {

struct HealthSnapshot {
  std::size_t products{0};          ///< guarded products run
  std::size_t detections{0};        ///< products with ≥ 1 mismatched tile
  std::size_t tiles_checked{0};
  std::size_t mismatched_tiles{0};
  std::size_t retries{0};
  std::size_t retrims{0};
  std::size_t fences{0};            ///< degraded re-runs taken
  std::size_t unrecovered{0};       ///< products returned best-effort
  std::size_t probe_events{0};      ///< self-test probes burned by escalation
  /// Σ over detecting products of (first mismatched tile index + 1):
  /// how many tiles were scanned before corruption surfaced.
  std::size_t detection_latency_tiles{0};
  double worst_residual{0.0};
  double worst_tolerance{0.0};
  ptc::EventCounter checksum_events;  ///< spare checksum-lane charge
  ptc::EventCounter retry_events;     ///< data work re-executed by recovery
  /// Per-lane over-budget counts from escalation self-tests (flat lane
  /// index, LaneBank layout); sized on first record.
  std::vector<std::size_t> lane_mismatches;

  [[nodiscard]] double tile_mismatch_rate() const {
    return tiles_checked == 0
               ? 0.0
               : static_cast<double>(mismatched_tiles) / static_cast<double>(tiles_checked);
  }
  [[nodiscard]] double mean_detection_latency() const {
    return detections == 0 ? 0.0
                           : static_cast<double>(detection_latency_tiles) /
                                 static_cast<double>(detections);
  }
};

class HealthMonitor {
 public:
  /// Fold one product's guard verdicts (tiles checked, mismatches,
  /// detection site, checksum-lane charge) into the running totals.
  void record_product(const ptc::GuardOutcome& outcome);

  /// Record a recovery rung taken for a mismatching tile.
  void record_action(GuardAction action);

  /// Fold an escalation self-test: probe charge plus per-lane
  /// over-budget attribution (recovered and dead lanes both count — the
  /// lane *was* implicated even when the re-trim saved it).
  void record_self_test(const SelfTestReport& report);

  /// Data-path events re-executed by a retry or degraded re-run.
  void record_retry_events(const ptc::EventCounter& events);

  /// Calibration probes burned outside a SelfTestReport (the fence
  /// rung's golden-table readback).
  void record_probe_events(std::size_t probes) { snap_.probe_events += probes; }

  /// Attribute a mismatch to one flat lane (fence-rung divergence).
  void record_implicated_lane(std::size_t lane);

  [[nodiscard]] const HealthSnapshot& snapshot() const { return snap_; }
  void reset() { snap_ = HealthSnapshot{}; }

 private:
  HealthSnapshot snap_;
};

}  // namespace pdac::faults
