// health_monitor.hpp — fleet-health aggregation for the ABFT guard.
//
// One monitor rides along a guarded backend and accumulates everything
// operations would page on: how many products/tiles were verified, how
// many mismatched, how far into a product the first corruption was
// caught (detection latency, in tiles), which recovery rungs fired, and
// which lanes the escalation self-tests found over budget.  The two
// event counters keep the overhead honest and separable: checksum_events
// is the pure guard charge (spare row/column lanes), retry_events is the
// data-path work re-executed by recovery — arch::event_energy prices
// both, and eval::report renders the summary.
//
// Concurrency: every record_* entry point is internally synchronized, so
// one monitor can be shared by several guarded backends running products
// in parallel (the serving pool's fleet rollup) and the counts reconcile
// exactly.  snapshot() returns a coherent copy taken under the same
// lock.  The action listener is invoked outside the lock, on the
// recording thread — listeners that touch shared state synchronize
// themselves.
#pragma once

#include <cstddef>
#include <functional>
#include <mutex>
#include <vector>

#include "faults/escalation.hpp"
#include "ptc/abft.hpp"
#include "ptc/event_counter.hpp"

namespace pdac::faults {

struct HealthSnapshot {
  std::size_t products{0};          ///< guarded products run
  std::size_t detections{0};        ///< products with ≥ 1 mismatched tile
  std::size_t tiles_checked{0};
  std::size_t mismatched_tiles{0};
  /// Tiles repaired in place by single-error correction: detected and
  /// fixed digitally from the checksum residual, no recovery rung spent.
  std::size_t sec_corrections{0};
  std::size_t retries{0};
  std::size_t retrims{0};
  std::size_t fences{0};            ///< degraded re-runs taken
  std::size_t unrecovered{0};       ///< products returned best-effort
  /// Tiles whose verdict absorbed in-band drift (GuardConfig::drift_band)
  /// and products containing at least one such tile — watched wander, no
  /// rung spent (DESIGN.md §16).
  std::size_t drift_tiles{0};
  std::size_t drift_products{0};
  double worst_drift_ratio{0.0};    ///< largest absorbed residual/tolerance
  /// Re-trims fired at product entry by the drift tracker's excursion
  /// signal (counted inside `retrims` too — this splits out the cause).
  std::size_t proactive_retrims{0};
  /// Re-trims the ladder or the proactive rung *wanted* but the windowed
  /// governor (EscalationConfig::window_retrims) refused.
  std::size_t governed_retrims{0};
  std::size_t probe_events{0};      ///< self-test probes burned by escalation
  /// Σ over detecting products of (first mismatched tile index + 1):
  /// how many tiles were scanned before corruption surfaced.
  std::size_t detection_latency_tiles{0};
  double worst_residual{0.0};
  double worst_tolerance{0.0};
  ptc::EventCounter checksum_events;  ///< spare checksum-lane charge
  ptc::EventCounter retry_events;     ///< data work re-executed by recovery
  /// Per-lane over-budget counts from escalation self-tests (flat lane
  /// index, LaneBank layout); sized on first record.
  std::vector<std::size_t> lane_mismatches;

  [[nodiscard]] double tile_mismatch_rate() const {
    return tiles_checked == 0
               ? 0.0
               : static_cast<double>(mismatched_tiles) / static_cast<double>(tiles_checked);
  }
  [[nodiscard]] double mean_detection_latency() const {
    return detections == 0 ? 0.0
                           : static_cast<double>(detection_latency_tiles) /
                                 static_cast<double>(detections);
  }
  /// Total lane implications across the bank — the guard-aware placement
  /// signal: how often escalation pinned blame on this backend's lanes.
  [[nodiscard]] std::size_t total_lane_mismatches() const {
    std::size_t total = 0;
    for (const std::size_t n : lane_mismatches) total += n;
    return total;
  }
};

class HealthMonitor {
 public:
  /// Notification for every recovery rung recorded (kRetry/kRetrim/
  /// kFence/kGiveUp; kAccept is never reported) — the serving scheduler
  /// subscribes to debit re-trim budgets and age health scores the
  /// moment escalation fires, instead of polling snapshots.
  using ActionListener = std::function<void(GuardAction)>;

  /// Fold one product's guard verdicts (tiles checked, mismatches,
  /// corrections, detection site, checksum-lane charge) into the running
  /// totals.
  void record_product(const ptc::GuardOutcome& outcome);

  /// Record a recovery rung taken for a mismatching tile.
  void record_action(GuardAction action);

  /// Fold an escalation self-test: probe charge plus per-lane
  /// over-budget attribution (recovered and dead lanes both count — the
  /// lane *was* implicated even when the re-trim saved it).
  void record_self_test(const SelfTestReport& report);

  /// Data-path events re-executed by a retry or degraded re-run.
  void record_retry_events(const ptc::EventCounter& events);

  /// Calibration probes burned outside a SelfTestReport (the fence
  /// rung's golden-table readback).
  void record_probe_events(std::size_t probes);

  /// Attribute a mismatch to one flat lane (fence-rung divergence).
  void record_implicated_lane(std::size_t lane);

  /// Mark the most recent re-trim as proactively fired by the drift
  /// tracker (call right after record_action(kRetrim)).
  void record_proactive_retrim();

  /// A re-trim request the windowed governor refused.
  void record_governed_retrim();

  /// Replace the action listener (empty = none).  Not synchronized
  /// against in-flight record_action calls — install before sharing the
  /// monitor across threads.
  void set_action_listener(ActionListener listener) { listener_ = std::move(listener); }

  /// Coherent copy of the running totals.
  [[nodiscard]] HealthSnapshot snapshot() const;
  void reset();

 private:
  mutable std::mutex mu_;
  HealthSnapshot snap_;
  ActionListener listener_;
};

}  // namespace pdac::faults
