// guarded_backend.hpp — ABFT checksum-guarded GEMM execution over a
// live (mutable, possibly mid-product-faulting) lane bank.
//
// DegradedBackend runs honestly on a *known*-degraded bank; this backend
// closes the window before the knowing: it detects silent corruption
// in-band, at tile granularity, and drives the faults::EscalationPolicy
// ladder until the product verifies or the ladder is exhausted.
//
// Trust model (DESIGN.md §12).  The controller snapshots every lane's
// full encode table at calibration time — construction, and again after
// each escalation self-test, the only points hardware state is verified
// trustworthy.  Data always encodes through the lanes' CURRENT state;
// checksum references are digital predictions from the GOLDEN snapshot.
// On healthy hardware the two are bit-identical LUTs, so the residual is
// pure floating-point reassociation and the noise-calibrated band
// (ptc::guard_tolerance) yields provably ~0 false positives; any fault
// that perturbs an encode — stuck MRR, dead PD bit, TIA gain step, bias
// walk — diverges current from golden and lands orders of magnitude
// outside the band in the first tile it touches.  Crucially this also
// catches faults striking BEFORE a product starts: re-deriving the
// reference from the live state would corrupt both sides identically.
//
// Mid-product fault storms: attach_storm() hooks a FaultInjector whose
// clock advances `steps_per_tile` before every tile step, so faults land
// between tiles of one product exactly like the hardware timeline.  With
// a storm attached the tile loop serializes and re-encodes each tile's
// operand slices through the live lanes per step (the hardware modulates
// per tile step anyway); without one, operands are pre-encoded once per
// product and the loop is tile-parallel — bit-identical, since lane
// state cannot change mid-product.
//
// Recovery (escalation.hpp): mismatching tiles are re-run per the ladder
// — retry (re-encode + re-run), targeted self-test + re-trim of the
// lanes the product uses (then golden re-snapshot + operand re-prepare),
// fence + full degraded re-run on the surviving channels — bounded per
// product, with every rung, probe and re-executed event recorded in the
// HealthMonitor.  events() carries the data-path work actually executed
// (including recovery re-runs); the pure checksum-lane charge stays
// separate in the monitor so arch::event_energy can price both honestly.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "faults/drift_tracker.hpp"
#include "faults/escalation.hpp"
#include "faults/fault_injector.hpp"
#include "faults/health_monitor.hpp"
#include "faults/lane_bank.hpp"
#include "faults/lane_table.hpp"
#include "nn/backend.hpp"
#include "ptc/abft.hpp"
#include "ptc/tile_scheduler.hpp"

namespace pdac::faults {

struct GuardedBackendConfig {
  /// Tile geometry (matches ptc::GemmConfig).
  std::size_t array_rows{8};
  std::size_t array_cols{8};
  /// Simulation workers for the storm-free tile dispatch (same semantics
  /// as ptc::GemmConfig::threads); results are bit-identical at any
  /// value.  Storm runs serialize regardless.
  std::size_t threads{1};
  /// Weight-stationary operand cache for matmul_cached products.
  nn::OperandCacheConfig cache{};
  /// KV-stationary prepared-operand cache for matmul_kv products
  /// (DESIGN.md §17): per-sequence growing operands, appended in place
  /// while the bank's epoch and packing hold, rebuilt otherwise.
  nn::KvPreparedCacheConfig kv_cache{};
  /// Checksum guard band; `enabled` is forced on (that is the point of
  /// this backend).  Leave noise_sigma 0 on the deterministic lane path.
  ptc::GuardConfig guard{};
  /// Recovery ladder bounds + the targeted self-test's BIST config —
  /// including the drift-hysteresis governor knobs (proactive_retrim,
  /// retrim_cooldown_products, window_retrims/window_products).
  EscalationConfig escalation{};
  /// Per-lane EWMA drift estimation (drift_tracker.hpp): thresholds for
  /// the clean / drifting / excursion classification the proactive
  /// re-trim rung and the serving quarantine policy read.
  DriftTrackerConfig drift{};
  /// Serve the product-level CURRENT-state encodes (prepare_b, encode_a)
  /// from an epoch-keyed coefficient table (lane_table.hpp) instead of
  /// evaluating lane models per element.  Bit-identical either way.
  /// Per-tile storm/retry re-encodes always go through the live models:
  /// under sustained mutation the table would rebuild per tile, costing
  /// more than the handful of encodes it would serve.
  bool use_lane_table{true};
  /// Numeric tier for the tile data dots (DESIGN.md §15).
  ///   kKernel      — serial scalar accumulation (default): bit-identical
  ///                  to DegradedBackend's re-run, the reference contract.
  ///   kKernelSimd  — blocked double dots (common/simd.hpp): in-band
  ///                  reassociation, same verdict machinery.
  ///   kKernelQuant — exact int16-code dots, served from the lane
  ///                  table's quant view when it is fresh AND every lane
  ///                  is on the quantizer grid; any tile the
  ///                  precondition cannot certify (off-grid lanes,
  ///                  storm/retry live re-encodes, stale table) falls
  ///                  back to the blocked double dots — the tier
  ///                  degrades, the product stays live.
  /// Checksum references are double-precision golden dots in every tier,
  /// so detection semantics never change.
  ptc::ExecutionPath path{ptc::ExecutionPath::kKernel};
};

/// The quant → simd → kernel ladder resolved against a live bank: the
/// integer tier iff the bank's whole encode table sits on the quantizer
/// grid (physical perturbed lanes practically never do), the SIMD tier
/// iff the CPU has the wide path, the scalar kernel otherwise.  The
/// faults-layer mirror of nn::fastest_gemm_config.
[[nodiscard]] ptc::ExecutionPath auto_execution_path(const LaneBank& bank);

/// A transient single-dot upset: an SEU-class glitch that corrupts one
/// detector readout of the *next* product's initial pass by `delta` (raw
/// accumulator units).  Cleared after that pass, so a retry re-run — or
/// the SEC correction that makes the retry unnecessary — sees clean
/// hardware.  Output coordinates are global (row, col) of the product.
struct DotUpset {
  std::size_t row{0};
  std::size_t col{0};
  double delta{0.0};
};

class GuardedBackend final : public nn::GemmBackend {
 public:
  /// `shared_monitor` (optional) replaces the backend's own monitor so a
  /// fleet of backends can attribute into one rollup; HealthMonitor is
  /// internally synchronized, so concurrent products reconcile exactly.
  explicit GuardedBackend(LaneBank& bank, GuardedBackendConfig cfg = {},
                          HealthMonitor* shared_monitor = nullptr);

  /// Guarded product: every tile verified against the golden references,
  /// mismatches recovered through the escalation ladder.  With every
  /// channel fenced the accelerator is offline (all-zero result, no
  /// events), mirroring DegradedBackend.
  [[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b) override;

  /// Same product with the prepared B side (current + golden encodings
  /// and checksum stripes) cached across calls, invalidated by the
  /// bank's epoch and by channel-packing changes.
  [[nodiscard]] Matrix matmul_cached(const Matrix& a, const Matrix& b,
                                     const nn::WeightHandle& weight) override;

  /// Guarded product against a GROWING operand (DESIGN.md §17).  While
  /// the bank's epoch and channel packing hold, the resident prepared
  /// operand (current + golden encodings, qcodes, checksum stripes) is
  /// extended in place with just the new kv rows; an epoch bump — any
  /// re-trim or fence — or a packing/scale/tier change forces a full
  /// rebuild, so appends can never bridge a recalibration.  Outputs,
  /// events, and guard verdicts are bit-identical to the unprepared
  /// matmul at every length; an escalation mid-product rebuilds the
  /// resident entry like matmul_cached refreshes the weight cache.
  [[nodiscard]] Matrix matmul_kv(const Matrix& a, const Matrix& kv,
                                 const nn::KvHandle& handle) override;
  void release_kv(std::uint64_t id) override { kv_cache_.erase(id); }

  [[nodiscard]] std::string name() const override { return "photonic-guarded"; }
  [[nodiscard]] const nn::OperandCache* operand_cache() const override { return &cache_; }
  [[nodiscard]] nn::OperandCache& cache() { return cache_; }
  [[nodiscard]] const nn::KvPreparedCache* kv_cache() const override { return &kv_cache_; }

  /// Re-snapshot the golden encode tables from the bank's current state.
  /// Call after any *trusted* recalibration (production trim, scheduled
  /// self-test); the backend calls it itself after escalation
  /// self-tests.  Never call on unverified state — golden would then
  /// bless the fault.
  void recalibrate();

  /// Drive `injector` forward by `steps_per_tile` before every tile
  /// step, so scheduled faults strike mid-product.  The injector must
  /// target this backend's bank.  Pass nullptr to detach.
  void attach_storm(FaultInjector* injector, std::uint64_t steps_per_tile);

  /// Queue a transient single-dot upset for the next product (test and
  /// storm-bench hook for the SEC-correction path).
  void inject_dot_upset(DotUpset upset) { pending_upsets_.push_back(upset); }

  /// Unconditional targeted re-trim: self-test every surviving lane,
  /// re-snapshot golden, reset the drift tracker.  The serving pool's
  /// probation path calls this when a canary probe comes back unclean —
  /// recovery runs off the serving path, so it deliberately bypasses the
  /// cooldown and window governor (it still burns honest probe charges
  /// into the monitor, and counts as a re-trim).
  void force_retrim();

  /// Swap the recovery ladder's bounds at runtime — the serving layer's
  /// re-trim budget throttles a backend by handing it a ladder with
  /// max_retrims = 0 until the budget refills.
  void set_escalation(const EscalationConfig& escalation) {
    cfg_.escalation = escalation;
    policy_ = EscalationPolicy(escalation);
  }

  [[nodiscard]] const LaneBank& bank() const { return bank_; }
  [[nodiscard]] const HealthMonitor& monitor() const { return *monitor_; }
  [[nodiscard]] HealthMonitor& monitor() { return *monitor_; }
  [[nodiscard]] const EscalationPolicy& policy() const { return policy_; }
  [[nodiscard]] const GuardedBackendConfig& config() const { return cfg_; }
  [[nodiscard]] const DriftTracker& drift() const { return tracker_; }
  [[nodiscard]] DriftTracker& drift() { return tracker_; }
  /// Guarded products run (the governor's product clock).
  [[nodiscard]] std::size_t products_run() const { return products_run_; }

 private:
  /// Per-product governor bookkeeping at matmul entry: advance the
  /// product clock, roll the re-trim window at its exact boundary, and
  /// fire the proactive re-trim when the drift tracker reports an
  /// excursion and the cooldown + window allow it.
  void product_entry();
  void maybe_proactive_retrim();
  /// Roll window_start_product_ forward by whole window lengths so the
  /// budget resets exactly at boundary multiples.
  void roll_retrim_window();
  /// Windowed governor verdict: may a re-trim (ladder or proactive) be
  /// spent right now?
  [[nodiscard]] bool retrim_allowed() const;
  /// Debit one re-trim against the window and start the cooldown dwell.
  void note_retrim();
  /// Feed per-lane screen errors into the drift tracker as over-budget
  /// excess — before recalibrate() resets the levels, so the samples are
  /// at least counted (snapshot telemetry) and detect-only self-tests
  /// leave graded evidence behind.
  void observe_probes(const SelfTestReport& report);

  [[nodiscard]] std::vector<std::size_t> surviving_channels() const;
  [[nodiscard]] double golden_encode(std::size_t rail, std::size_t channel, double r) const;

  /// CURRENT-state encode for the product-level batch paths: the lane
  /// table when enabled and fresh, the live lane model otherwise.
  /// Bit-identical values either way.
  [[nodiscard]] double encode_current(std::size_t rail, std::size_t channel, double r) const;

  /// The B operand's source matrix in whichever orientation the caller
  /// holds it: exactly one of `b` (B itself, k × n) or `bt` (Bᵀ, n × k —
  /// the KV score path, where the history IS the transpose) is non-null.
  /// run_guarded and the prepare/rebuild paths read through this so the
  /// kv path never materializes a transposed copy of the history.
  struct BSource {
    const Matrix* b{nullptr};
    const Matrix* bt{nullptr};
  };

  /// Full guarded pipeline for one product (shared by all matmul entry
  /// points); `pb` must have been prepared against the current
  /// epoch/packing.  `kv` (nullable) names the resident KV entry to
  /// refresh should an escalation rung rebuild the operand.
  [[nodiscard]] Matrix run_guarded(const Matrix& a, const BSource& src,
                                   std::shared_ptr<const ptc::PreparedOperand> pb,
                                   const nn::WeightHandle* weight,
                                   const nn::KvHandle* kv = nullptr);

  /// Prepare B: current-state encoding (data), golden encoding
  /// (reference) and its checksum stripes, channel packing, epoch stamp.
  [[nodiscard]] ptc::PreparedOperand prepare_b(const Matrix& b,
                                               std::vector<std::size_t> channels) const;
  /// Same pipeline reading through either orientation; bit-identical to
  /// prepare_b of the equivalent B.
  [[nodiscard]] ptc::PreparedOperand prepare_b_src(const BSource& src,
                                                   std::vector<std::size_t> channels) const;

  /// Cache-aware prepare (nullptr weight = uncached).
  [[nodiscard]] std::shared_ptr<const ptc::PreparedOperand> obtain_b(
      const Matrix& b, const nn::WeightHandle* weight);

  /// KV-cache-aware prepare: append to the resident entry when the
  /// epoch/packing still hold and the engine-side preconditions pass,
  /// rebuild (counted) otherwise.
  [[nodiscard]] std::shared_ptr<const ptc::PreparedOperand> obtain_kv(
      const BSource& src, const nn::KvHandle& handle);

  /// Guarded in-place appends (DESIGN.md §17): dual-encode only the new
  /// kv rows, extend qcodes when the quant tier is live, and continue
  /// the golden checksum stripes in the exact fp order of a fresh
  /// prepare.  kCols = new output columns (kv = Bᵀ source); kRows = the
  /// reduction axis grows (kv = B), into padded column capacity.
  /// Return false when the entry cannot be extended — caller rebuilds.
  [[nodiscard]] bool append_kv_cols(ptc::PreparedOperand& pb, const Matrix& kv) const;
  [[nodiscard]] bool append_kv_rows(ptc::PreparedOperand& pb, const Matrix& kv) const;

  /// True when the integer tier can serve this product right now:
  /// quant path requested, lane table enabled + fresh, every lane
  /// on-grid.  Evaluated per product (and re-evaluated after ladder
  /// rungs), so the tier can only engage when its exactness
  /// precondition is certified against the CURRENT bank state.
  [[nodiscard]] bool quant_live() const;

  /// Compute + verify one tile: data dots from `ae` (current A encodes)
  /// × `bdata` (current B encodes), references from `ae_gold` /
  /// `pb.reference` / the cached checksum stripes.  Writes the rescaled
  /// outputs into `c` and returns the verdict.  `upsets` (nullable) are
  /// the transient dot glitches of the initial pass; single-element
  /// corruptions whose row×column residuals intersect are corrected
  /// digitally in place when GuardConfig::sec_correction is on.
  /// `qae` (nullable) carries the A-side int16 codes matching `ae`; the
  /// integer tier runs only when it is non-null AND pb.qcodes matches
  /// `bdata` — callers pass nullptr for any tile whose operands were
  /// re-encoded live (storm/retry), dropping that tile to the double
  /// tier of cfg_.path.
  [[nodiscard]] ptc::TileCheck run_tile(const ptc::Tile& tile, std::size_t t, const Matrix& ae,
                                        const Matrix& ae_gold, const Matrix& xsum,
                                        const Matrix& bdata, const ptc::PreparedOperand& pb,
                                        double rescale, Matrix& c,
                                        const std::vector<DotUpset>* upsets = nullptr,
                                        const CodeMatrix* qae = nullptr) const;

  /// kFence rung: full calibration-table readback of the implicated
  /// lanes against the golden snapshot, fencing every lane that has
  /// diverged.  Returns the number of lanes fenced (epoch is bumped iff
  /// > 0); probe charges land in the health monitor.

  std::size_t fence_diverged_lanes(const std::vector<std::size_t>& channels);

  [[nodiscard]] ptc::EventCounter tile_events(const ptc::Tile& tile, std::size_t k,
                                              std::size_t usable_channels) const;

  /// Flat lane indices (both rails) of the channels in `channels`.
  [[nodiscard]] std::vector<std::size_t> implicated_lanes(
      const std::vector<std::size_t>& channels) const;

  LaneBank& bank_;
  GuardedBackendConfig cfg_;
  std::unique_ptr<ThreadPool> pool_;
  nn::OperandCache cache_;
  nn::KvPreparedCache kv_cache_;
  EscalationPolicy policy_;
  HealthMonitor own_monitor_;
  HealthMonitor* monitor_{&own_monitor_};  ///< shared fleet monitor when set
  std::vector<DotUpset> pending_upsets_;   ///< consumed by the next product

  /// Golden encode tables: per flat lane, output amplitude for every
  /// signed quantizer code (index code + max_code).
  std::vector<std::vector<double>> golden_;
  std::uint64_t golden_epoch_{0};  ///< bank epoch golden_ was snapped at

  /// Current-state lane coefficients for prepare_b/encode_a; re-ensured
  /// at product entry and after every ladder rung that moves the epoch.
  LaneEncodeTable table_;

  FaultInjector* storm_{nullptr};
  std::uint64_t storm_steps_per_tile_{0};
  std::uint64_t storm_clock_{0};

  /// Per-lane EWMA drift levels (DESIGN.md §16); reset at every trusted
  /// recalibration point alongside the golden snapshot.
  DriftTracker tracker_;
  // Re-trim governor state (survives set_escalation ladder swaps — the
  // serving clamp changes bounds, not history).
  std::size_t products_run_{0};
  std::size_t window_start_product_{0};
  std::size_t window_retrims_spent_{0};
  std::size_t last_retrim_product_{0};
  bool retrimmed_ever_{false};
};

}  // namespace pdac::faults
