// drift_tracker.hpp — per-lane EWMA drift estimation for the hysteresis
// recovery policy (DESIGN.md §16).
//
// The ABFT guard gives a binary verdict per tile; continuous drift (bias
// walk, slow thermal wander) needs a *graded* signal so the controller
// can tell "lane is wandering but still sub-accuracy" from "lane needs a
// re-trim now" without burning calibration probes to find out.  The
// tracker folds two cheap evidence streams into one exponentially
// weighted moving average per lane:
//
//   * guard residuals — after every guarded product, the worst
//     residual/tolerance ratio is attributed to the lanes the product's
//     channel packing used.  Clean products observe ratios ≪ 1 and decay
//     the average; in-band drift observes ratios in (1, drift_band];
//     excursions observe capped large ratios.  One residual cannot name
//     the lane, so the observation lands on every implicated lane — the
//     same attribution granularity HealthMonitor::lane_mismatches uses.
//   * self-test probe samples — per-lane screen errors, normalized as
//     over-budget excess max(0, err/budget − 1) so a healthy lane's
//     intrinsic encoder nonlinearity (≈ budget-sized by construction)
//     reads as ~0 instead of polluting the average.
//
// Classification is a pure threshold read on the EWMA level:
//   level < drift_level      → kClean
//   level < excursion_level  → kDrifting   (absorb, keep watching)
//   otherwise                → kExcursion  (re-trim when the governor allows)
//
// reset() re-zeros every lane and is called from trusted recalibration
// points (GuardedBackend::recalibrate): after a golden re-snapshot the
// residual stream measures divergence from the *new* trusted state, so
// carrying the old levels forward would double-charge repaired drift and
// immediately re-trigger the proactive rung.
//
// Not internally synchronized: one tracker rides one GuardedBackend,
// which runs one product at a time (observation happens between the
// guarded passes, never inside the tile-parallel region).
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

namespace pdac::faults {

struct DriftTrackerConfig {
  /// EWMA weight of the newest observation (level ← (1−α)·level + α·x).
  double alpha{0.25};
  /// Levels below this read kClean.
  double drift_level{0.5};
  /// Levels at or above this read kExcursion; between the two, kDrifting.
  double excursion_level{3.0};
  /// Observations are clamped to this (NaN too): one wild residual must
  /// not take ~log(cap)/α products to decay back out of the average.
  double sample_cap{64.0};
};

enum class DriftState {
  kClean,     ///< tracking noise, no evidence of wander
  kDrifting,  ///< sub-accuracy wander inside the hysteresis band
  kExcursion, ///< drift crossed the band; targeted re-trim is warranted
};

/// Coherent read of the tracker for reports and placement decisions.
struct DriftSnapshot {
  std::size_t lanes{0};
  std::size_t clean{0};
  std::size_t drifting{0};
  std::size_t excursions{0};
  double worst_level{0.0};
  std::size_t residual_samples{0};  ///< guard-residual observations folded
  std::size_t probe_samples{0};     ///< self-test probe observations folded
};

class DriftTracker {
 public:
  explicit DriftTracker(DriftTrackerConfig cfg = {});

  /// Grow (or shrink) to `lanes` levels; existing levels are preserved,
  /// new lanes start clean.
  void resize(std::size_t lanes);

  /// Fold one product's worst residual/tolerance ratio into every
  /// implicated lane's average.  Out-of-range lane indices grow the
  /// tracker (first observation sizes it).
  void observe_residual(const std::vector<std::size_t>& lanes, double ratio);

  /// Fold one self-test probe sample for one lane, already normalized as
  /// over-budget excess (see header comment).
  void observe_probe(std::size_t lane, double excess);

  /// Re-zero every level — call at trusted recalibration points only.
  /// The cumulative sample counters survive (telemetry, not state).
  void reset();

  [[nodiscard]] std::size_t lanes() const { return level_.size(); }
  [[nodiscard]] double level(std::size_t lane) const;
  [[nodiscard]] DriftState state(std::size_t lane) const;
  [[nodiscard]] bool any_excursion() const;
  [[nodiscard]] std::size_t excursion_lanes() const;
  [[nodiscard]] DriftSnapshot snapshot() const;
  [[nodiscard]] const DriftTrackerConfig& config() const { return cfg_; }

 private:
  void fold(std::size_t lane, double sample);
  [[nodiscard]] double clamp_sample(double sample) const;

  DriftTrackerConfig cfg_;
  std::vector<double> level_;
  std::size_t residual_samples_{0};
  std::size_t probe_samples_{0};
};

std::string_view to_string(DriftState state);

}  // namespace pdac::faults
