#include "faults/fault_injector.hpp"

#include <vector>

#include "common/require.hpp"

namespace pdac::faults {

namespace {

core::Segment segment_of(int index) {
  switch (index) {
    case 0: return core::Segment::kNegativeOuter;
    case 2: return core::Segment::kPositiveOuter;
    default: return core::Segment::kMiddle;
  }
}

}  // namespace

FaultInjector::FaultInjector(LaneBank& bank, FaultSchedule schedule)
    : bank_(bank),
      schedule_(std::move(schedule)),
      // Decorrelated from the schedule draw so editing rates does not
      // silently reshape the drift history.
      walk_rng_(schedule_.cfg.seed ^ 0x9e3779b97f4a7c15ull) {
  PDAC_REQUIRE(schedule_.cfg.lanes == bank_.lanes(),
               "FaultInjector: schedule was generated for a different lane count");
  PDAC_REQUIRE(schedule_.cfg.bits == bank_.bits(),
               "FaultInjector: schedule was generated for a different bit width");
}

void FaultInjector::advance_to(std::uint64_t step) {
  PDAC_REQUIRE(step >= now_, "FaultInjector: the schedule clock cannot rewind");
  const double walk_sigma = schedule_.cfg.bias_walk_sigma_per_step;
  const double droop = schedule_.cfg.laser_droop_per_step;
  const std::vector<double> no_weight_delta(static_cast<std::size_t>(bank_.bits()), 0.0);

  bool mutated = false;
  for (std::uint64_t s = now_ + 1; s <= step; ++s) {
    while (next_event_ < schedule_.events.size() &&
           schedule_.events[next_event_].step <= s) {
      apply(schedule_.events[next_event_]);
      ++next_event_;
      mutated = true;
    }
    if (walk_sigma > 0.0) {
      for (std::size_t i = 0; i < bank_.lanes(); ++i) {
        for (int seg = 0; seg < 3; ++seg) {
          bank_.lane(i).model.apply_correction(segment_of(seg), no_weight_delta,
                                               walk_rng_.gaussian(0.0, walk_sigma));
        }
      }
      mutated = true;
    }
    if (droop > 0.0) {
      laser_scale_ *= 1.0 - droop;
      for (std::size_t i = 0; i < bank_.lanes(); ++i) {
        Lane& ln = bank_.lane(i);
        ln.hook.carrier_scale = laser_scale_;
        ln.model.set_fault_hook(ln.hook);
      }
      mutated = true;
    }
  }
  now_ = step;
  // Any lane-state write invalidates encodings prepared against this
  // bank (DESIGN.md §10).
  if (mutated) bank_.bump_epoch();
}

void FaultInjector::apply(const FaultEvent& ev) {
  Lane& ln = bank_.lane(ev.lane);
  switch (ev.kind) {
    case FaultKind::kStuckMrr:
      ln.hook.stuck_output = ev.magnitude;
      ln.model.set_fault_hook(ln.hook);
      break;
    case FaultKind::kDeadPd:
      ln.hook.dead_pd_bits |= 1u << static_cast<unsigned>(ev.bit);
      ln.model.set_fault_hook(ln.hook);
      break;
    case FaultKind::kDegradedPd:
      ln.hook.pd_responsivity_scale *= ev.magnitude;
      ln.model.set_fault_hook(ln.hook);
      break;
    case FaultKind::kTiaGainStep: {
      // A gain step lands in the TIA feedback network, so it is written
      // into the bank weights where a re-trim can calibrate it out.
      const core::Segment seg = segment_of(ev.segment);
      std::vector<double> delta(static_cast<std::size_t>(bank_.bits()), 0.0);
      const auto bit = static_cast<std::size_t>(ev.bit);
      delta[bit] = ln.model.bank(seg).weights[bit] * (ev.magnitude - 1.0);
      ln.model.apply_correction(seg, delta, 0.0);
      break;
    }
    case FaultKind::kBiasStep:
      ln.model.apply_correction(segment_of(ev.segment),
                                std::vector<double>(static_cast<std::size_t>(bank_.bits()), 0.0),
                                ev.magnitude);
      break;
  }
}

}  // namespace pdac::faults
