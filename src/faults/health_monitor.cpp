#include "faults/health_monitor.hpp"

#include <algorithm>
#include <cmath>

namespace pdac::faults {

void HealthMonitor::record_product(const ptc::GuardOutcome& outcome) {
  if (!outcome.enabled) return;
  std::lock_guard<std::mutex> lk(mu_);
  ++snap_.products;
  snap_.tiles_checked += outcome.tiles_checked;
  snap_.mismatched_tiles += outcome.mismatched_tiles;
  snap_.sec_corrections += outcome.tiles_corrected;
  snap_.checksum_events += outcome.checksum_events;
  if (outcome.mismatched_tiles > 0) {
    ++snap_.detections;
    snap_.detection_latency_tiles += outcome.first_mismatch + 1;
  }
  if (std::isnan(outcome.worst_residual) || outcome.worst_residual > snap_.worst_residual) {
    snap_.worst_residual = outcome.worst_residual;
    snap_.worst_tolerance = outcome.worst_tolerance;
  }
  snap_.drift_tiles += outcome.drift_tiles;
  if (outcome.drift_tiles > 0) ++snap_.drift_products;
  snap_.worst_drift_ratio = std::max(snap_.worst_drift_ratio, outcome.worst_drift_ratio);
}

void HealthMonitor::record_proactive_retrim() {
  std::lock_guard<std::mutex> lk(mu_);
  ++snap_.proactive_retrims;
}

void HealthMonitor::record_governed_retrim() {
  std::lock_guard<std::mutex> lk(mu_);
  ++snap_.governed_retrims;
}

void HealthMonitor::record_action(GuardAction action) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    switch (action) {
      case GuardAction::kAccept: return;
      case GuardAction::kRetry: ++snap_.retries; break;
      case GuardAction::kRetrim: ++snap_.retrims; break;
      case GuardAction::kFence: ++snap_.fences; break;
      case GuardAction::kGiveUp: ++snap_.unrecovered; break;
    }
  }
  // Outside the lock: a listener is free to read snapshots or drive the
  // backend without deadlocking.
  if (listener_) listener_(action);
}

void HealthMonitor::record_self_test(const SelfTestReport& report) {
  std::lock_guard<std::mutex> lk(mu_);
  snap_.probe_events += report.probe_events;
  for (const LaneOutcome& lane : report.lanes) {
    if (lane.verdict == LaneVerdict::kHealthy) continue;
    // Already-fenced lanes are reported dead without being screened —
    // that is old news, not a fresh implication.
    if (!lane.retrimmed && lane.screen_error_before == 0.0) continue;
    if (snap_.lane_mismatches.size() <= lane.lane) {
      snap_.lane_mismatches.resize(lane.lane + 1, 0);
    }
    ++snap_.lane_mismatches[lane.lane];
  }
}

void HealthMonitor::record_retry_events(const ptc::EventCounter& events) {
  std::lock_guard<std::mutex> lk(mu_);
  snap_.retry_events += events;
}

void HealthMonitor::record_probe_events(std::size_t probes) {
  std::lock_guard<std::mutex> lk(mu_);
  snap_.probe_events += probes;
}

void HealthMonitor::record_implicated_lane(std::size_t lane) {
  std::lock_guard<std::mutex> lk(mu_);
  if (snap_.lane_mismatches.size() <= lane) snap_.lane_mismatches.resize(lane + 1, 0);
  ++snap_.lane_mismatches[lane];
}

HealthSnapshot HealthMonitor::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return snap_;
}

void HealthMonitor::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  snap_ = HealthSnapshot{};
}

}  // namespace pdac::faults
