#include "faults/health_monitor.hpp"

#include <algorithm>
#include <cmath>

namespace pdac::faults {

void HealthMonitor::record_product(const ptc::GuardOutcome& outcome) {
  if (!outcome.enabled) return;
  ++snap_.products;
  snap_.tiles_checked += outcome.tiles_checked;
  snap_.mismatched_tiles += outcome.mismatched_tiles;
  snap_.checksum_events += outcome.checksum_events;
  if (outcome.mismatched_tiles > 0) {
    ++snap_.detections;
    snap_.detection_latency_tiles += outcome.first_mismatch + 1;
  }
  if (std::isnan(outcome.worst_residual) || outcome.worst_residual > snap_.worst_residual) {
    snap_.worst_residual = outcome.worst_residual;
    snap_.worst_tolerance = outcome.worst_tolerance;
  }
}

void HealthMonitor::record_action(GuardAction action) {
  switch (action) {
    case GuardAction::kAccept: break;
    case GuardAction::kRetry: ++snap_.retries; break;
    case GuardAction::kRetrim: ++snap_.retrims; break;
    case GuardAction::kFence: ++snap_.fences; break;
    case GuardAction::kGiveUp: ++snap_.unrecovered; break;
  }
}

void HealthMonitor::record_self_test(const SelfTestReport& report) {
  snap_.probe_events += report.probe_events;
  for (const LaneOutcome& lane : report.lanes) {
    if (lane.verdict == LaneVerdict::kHealthy) continue;
    // Already-fenced lanes are reported dead without being screened —
    // that is old news, not a fresh implication.
    if (!lane.retrimmed && lane.screen_error_before == 0.0) continue;
    if (snap_.lane_mismatches.size() <= lane.lane) {
      snap_.lane_mismatches.resize(lane.lane + 1, 0);
    }
    ++snap_.lane_mismatches[lane.lane];
  }
}

void HealthMonitor::record_retry_events(const ptc::EventCounter& events) {
  snap_.retry_events += events;
}

void HealthMonitor::record_implicated_lane(std::size_t lane) {
  if (snap_.lane_mismatches.size() <= lane) snap_.lane_mismatches.resize(lane + 1, 0);
  ++snap_.lane_mismatches[lane];
}

}  // namespace pdac::faults
