#include "faults/fault_schedule.hpp"

#include <algorithm>
#include <cstdio>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace pdac::faults {

bool is_hard_fault(FaultKind kind) {
  return kind == FaultKind::kStuckMrr || kind == FaultKind::kDeadPd;
}

FaultSchedule generate_fault_schedule(const FaultScheduleConfig& cfg) {
  PDAC_REQUIRE(cfg.lanes >= 1, "generate_fault_schedule: at least one lane");
  PDAC_REQUIRE(cfg.horizon_steps >= 1, "generate_fault_schedule: empty horizon");
  PDAC_REQUIRE(cfg.hard_fault_rate >= 0.0 && cfg.hard_fault_rate <= 1.0 &&
                   cfg.drift_fault_rate >= 0.0 && cfg.drift_fault_rate <= 1.0,
               "generate_fault_schedule: rates are per-lane probabilities in [0, 1]");
  PDAC_REQUIRE(cfg.bits >= 2 && cfg.bits <= 16, "generate_fault_schedule: bits in [2, 16]");
  const auto max_bit = static_cast<std::int64_t>(cfg.bits - 1);
  FaultSchedule sched;
  sched.cfg = cfg;
  Rng rng(cfg.seed);

  const auto step_at = [&] {
    return static_cast<std::uint64_t>(
        rng.integer(1, static_cast<std::int64_t>(cfg.horizon_steps)));
  };

  for (std::size_t lane = 0; lane < cfg.lanes; ++lane) {
    // Hard faults: the lane latches (stuck MRR) or loses a receive PD.
    if (rng.uniform(0.0, 1.0) < cfg.hard_fault_rate) {
      FaultEvent ev;
      ev.step = step_at();
      ev.lane = lane;
      if (rng.uniform(0.0, 1.0) < 0.6) {
        ev.kind = FaultKind::kStuckMrr;
        ev.magnitude = rng.uniform(-1.0, 1.0);  // latched output amplitude
      } else {
        ev.kind = FaultKind::kDeadPd;
        ev.bit = static_cast<int>(rng.integer(0, max_bit));
      }
      sched.events.push_back(ev);
    }
    // Drift-class faults: recoverable by re-trimming the TIA banks.
    if (rng.uniform(0.0, 1.0) < cfg.drift_fault_rate) {
      FaultEvent ev;
      ev.step = step_at();
      ev.lane = lane;
      const double which = rng.uniform(0.0, 1.0);
      if (which < 0.4) {
        ev.kind = FaultKind::kTiaGainStep;
        ev.bit = static_cast<int>(rng.integer(0, max_bit));
        ev.segment = static_cast<int>(rng.integer(0, 2));
        ev.magnitude = rng.uniform(0.7, 1.3);  // gain factor
      } else if (which < 0.8) {
        ev.kind = FaultKind::kBiasStep;
        ev.segment = static_cast<int>(rng.integer(0, 2));
        ev.magnitude = rng.uniform(-0.08, 0.08);  // radians
      } else {
        ev.kind = FaultKind::kDegradedPd;
        ev.magnitude = rng.uniform(0.75, 0.95);  // responsivity scale
      }
      sched.events.push_back(ev);
    }
  }
  std::sort(sched.events.begin(), sched.events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return a.step != b.step ? a.step < b.step : a.lane < b.lane;
            });
  return sched;
}

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kStuckMrr: return "stuck-mrr";
    case FaultKind::kDeadPd: return "dead-pd";
    case FaultKind::kDegradedPd: return "degraded-pd";
    case FaultKind::kTiaGainStep: return "tia-gain-step";
    case FaultKind::kBiasStep: return "bias-step";
  }
  return "?";
}

std::string to_string(const FaultEvent& ev) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "t=%llu lane=%zu %s mag=%.4f bit=%d seg=%d",
                static_cast<unsigned long long>(ev.step), ev.lane,
                to_string(ev.kind).c_str(), ev.magnitude, ev.bit, ev.segment);
  return buf;
}

}  // namespace pdac::faults
