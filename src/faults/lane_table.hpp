// lane_table.hpp — epoch-keyed flat coefficient table over a LaneBank's
// encoders (the faults-layer counterpart of ptc/kernel.hpp's snapshot).
//
// LaneBank::encode is a pure function of the quantized code: it clamps,
// quantizes, and evaluates the lane's PerturbedPdacModel transfer at that
// code.  A bank with W wavelengths therefore collapses into a flat
// (2W · codes) table of doubles — the same closed form GuardedBackend's
// golden snapshot already exploits — turning every hot-path encode from a
// multi-segment model evaluation into one LUT load, bit-identical by
// construction.
//
// Unlike the golden snapshot (which must stay pinned at the last trusted
// calibration point), this table tracks the bank's CURRENT state: it is
// rebuilt whenever the bank's epoch moves, so injected faults, re-trims
// and recalibrations are never served stale.  The same caveat as every
// epoch consumer applies (lane_bank.hpp): code that mutates lanes
// directly through lane() must bump_epoch() afterwards.
//
// Thread safety: ensure() mutates and must be called between parallel
// regions (backends call it at product entry and after every in-product
// mutation point); encode() is const and safe to call concurrently once
// the table is fresh.
#pragma once

#include <cstdint>
#include <vector>

#include "converters/quantizer.hpp"
#include "faults/lane_bank.hpp"

namespace pdac::faults {

class LaneEncodeTable {
 public:
  /// Rebuild from `bank` iff stale (never built, epoch moved, or bank
  /// geometry changed).  O(lanes · codes) when it rebuilds, O(1) when
  /// fresh — one decode token amortizes it after a single epoch bump.
  void ensure(const LaneBank& bank);

  [[nodiscard]] bool fresh(const LaneBank& bank) const {
    return built_ && epoch_ == bank.epoch() && wavelengths_ == bank.wavelengths() &&
           table_.size() == bank.lanes() * codes_;
  }

  /// LUT-backed equivalent of LaneBank::encode(rail, channel, r) —
  /// bit-identical to the model evaluation it caches.
  [[nodiscard]] double encode(std::size_t rail, std::size_t channel, double r) const;

  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

 private:
  std::vector<double> table_;  ///< lane-major: flat_lane · codes + (code + max_code)
  converters::Quantizer quant_{8};
  std::size_t wavelengths_{0};
  std::size_t codes_{0};
  std::uint64_t epoch_{0};
  bool built_{false};
};

}  // namespace pdac::faults
