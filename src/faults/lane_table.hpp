// lane_table.hpp — epoch-keyed flat coefficient table over a LaneBank's
// encoders (the faults-layer counterpart of ptc/kernel.hpp's snapshot).
//
// LaneBank::encode is a pure function of the quantized code: it clamps,
// quantizes, and evaluates the lane's PerturbedPdacModel transfer at that
// code.  A bank with W wavelengths therefore collapses into a flat
// (2W · codes) table of doubles — the same closed form GuardedBackend's
// golden snapshot already exploits — turning every hot-path encode from a
// multi-segment model evaluation into one LUT load, bit-identical by
// construction.
//
// Unlike the golden snapshot (which must stay pinned at the last trusted
// calibration point), this table tracks the bank's CURRENT state: it is
// rebuilt whenever the bank's epoch moves, so injected faults, re-trims
// and recalibrations are never served stale.  The same caveat as every
// epoch consumer applies (lane_bank.hpp): code that mutates lanes
// directly through lane() must bump_epoch() afterwards.
//
// Thread safety: ensure() mutates and must be called between parallel
// regions (backends call it at product entry and after every in-product
// mutation point); encode() is const and safe to call concurrently once
// the table is fresh.
#pragma once

#include <cstdint>
#include <vector>

#include "converters/quantizer.hpp"
#include "faults/lane_bank.hpp"

namespace pdac::faults {

class LaneEncodeTable {
 public:
  /// Rebuild from `bank` iff stale (never built, epoch moved, or bank
  /// geometry changed).  O(lanes · codes) when it rebuilds, O(1) when
  /// fresh — one decode token amortizes it after a single epoch bump.
  void ensure(const LaneBank& bank);

  [[nodiscard]] bool fresh(const LaneBank& bank) const {
    return built_ && epoch_ == bank.epoch() && wavelengths_ == bank.wavelengths() &&
           table_.size() == bank.lanes() * codes_;
  }

  /// LUT-backed equivalent of LaneBank::encode(rail, channel, r) —
  /// bit-identical to the model evaluation it caches.
  [[nodiscard]] double encode(std::size_t rail, std::size_t channel, double r) const;

  /// Integer-tier view (DESIGN.md §15), rebuilt with the double table on
  /// every epoch move: each lane column is additionally snapped onto the
  /// quantizer grid where possible (amplitude == decode(code) bit for
  /// bit) and stored as int16 codes.  quant_available() reports whether
  /// EVERY lane is on-grid — the precondition for serving integer-dot
  /// execution from this table.  Perturbed physical lanes (fabrication
  /// variation, analog faults) are never exactly on-grid, so guarded and
  /// degraded paths simply see `false` and stay on the double tables —
  /// the tier degrades to the double path, never goes stale.
  [[nodiscard]] bool quant_available() const { return built_ && quant_ok_; }

  /// Per-lane grid verdict (flat lane index), for diagnostics/tests.
  [[nodiscard]] bool lane_on_grid(std::size_t flat) const {
    return built_ && lane_on_grid_[flat] != 0u;
  }

  /// int16-code equivalent of encode(): the code whose decode is the
  /// amplitude encode() returns.  Only valid when quant_available().
  [[nodiscard]] std::int16_t encode_code(std::size_t rail, std::size_t channel,
                                         double r) const;

  [[nodiscard]] const converters::Quantizer& quantizer() const { return quant_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

 private:
  std::vector<double> table_;  ///< lane-major: flat_lane · codes + (code + max_code)
  std::vector<std::int16_t> qtable_;      ///< int16 snap of table_ (valid per-lane)
  std::vector<std::uint8_t> lane_on_grid_;  ///< per flat lane: whole column on-grid
  converters::Quantizer quant_{8};
  std::size_t wavelengths_{0};
  std::size_t codes_{0};
  std::uint64_t epoch_{0};
  bool built_{false};
  bool quant_ok_{false};
};

}  // namespace pdac::faults
