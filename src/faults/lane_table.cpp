#include "faults/lane_table.hpp"

#include "common/math_utils.hpp"

namespace pdac::faults {

void LaneEncodeTable::ensure(const LaneBank& bank) {
  if (fresh(bank)) return;
  quant_ = bank.quantizer();
  wavelengths_ = bank.wavelengths();
  const std::int32_t max_code = quant_.max_code();
  codes_ = static_cast<std::size_t>(max_code) * 2 + 1;
  table_.resize(bank.lanes() * codes_);
  for (std::size_t l = 0; l < bank.lanes(); ++l) {
    const Lane& lane = bank.lane(l);
    double* row = table_.data() + l * codes_;
    for (std::size_t ci = 0; ci < codes_; ++ci) {
      const auto code = static_cast<std::int32_t>(static_cast<std::int64_t>(ci) - max_code);
      row[ci] = lane.model.encode_code(code);
    }
  }
  epoch_ = bank.epoch();
  built_ = true;
}

double LaneEncodeTable::encode(std::size_t rail, std::size_t channel, double r) const {
  const std::int32_t code = quant_.encode(math::clamp_unit(r));
  return table_[(rail * wavelengths_ + channel) * codes_ +
                static_cast<std::size_t>(code + quant_.max_code())];
}

}  // namespace pdac::faults
