#include "faults/lane_table.hpp"

#include "common/math_utils.hpp"

namespace pdac::faults {

void LaneEncodeTable::ensure(const LaneBank& bank) {
  if (fresh(bank)) return;
  quant_ = bank.quantizer();
  wavelengths_ = bank.wavelengths();
  const std::int32_t max_code = quant_.max_code();
  codes_ = static_cast<std::size_t>(max_code) * 2 + 1;
  table_.resize(bank.lanes() * codes_);
  qtable_.resize(bank.lanes() * codes_);
  lane_on_grid_.assign(bank.lanes(), 1u);
  for (std::size_t l = 0; l < bank.lanes(); ++l) {
    const Lane& lane = bank.lane(l);
    double* row = table_.data() + l * codes_;
    std::int16_t* qrow = qtable_.data() + l * codes_;
    for (std::size_t ci = 0; ci < codes_; ++ci) {
      const auto code = static_cast<std::int32_t>(static_cast<std::int64_t>(ci) - max_code);
      row[ci] = lane.model.encode_code(code);
      // Integer-tier snap: the amplitude must be EXACTLY some grid
      // point's decode; any analog deviation marks the lane off-grid.
      std::int32_t snapped = 0;
      if (quant_.snap_to_code(row[ci], &snapped)) {
        qrow[ci] = static_cast<std::int16_t>(snapped);
      } else {
        qrow[ci] = 0;
        lane_on_grid_[l] = 0u;
      }
    }
  }
  quant_ok_ = true;
  for (const std::uint8_t on : lane_on_grid_) {
    if (on == 0u) quant_ok_ = false;
  }
  epoch_ = bank.epoch();
  built_ = true;
}

double LaneEncodeTable::encode(std::size_t rail, std::size_t channel, double r) const {
  const std::int32_t code = quant_.encode(math::clamp_unit(r));
  return table_[(rail * wavelengths_ + channel) * codes_ +
                static_cast<std::size_t>(code + quant_.max_code())];
}

std::int16_t LaneEncodeTable::encode_code(std::size_t rail, std::size_t channel,
                                          double r) const {
  const std::int32_t code = quant_.encode(math::clamp_unit(r));
  return qtable_[(rail * wavelengths_ + channel) * codes_ +
                 static_cast<std::size_t>(code + quant_.max_code())];
}

}  // namespace pdac::faults
