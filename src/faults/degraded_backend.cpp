#include "faults/degraded_backend.hpp"

#include <algorithm>
#include <vector>

#include "common/require.hpp"
#include "converters/quantizer.hpp"

namespace pdac::faults {

DegradedBackend::DegradedBackend(const LaneBank& bank, DegradedBackendConfig cfg)
    : bank_(bank), cfg_(cfg) {
  PDAC_REQUIRE(cfg_.array_rows >= 1 && cfg_.array_cols >= 1,
               "DegradedBackend: array dimensions must be positive");
}

Matrix DegradedBackend::matmul(const Matrix& a, const Matrix& b) {
  PDAC_REQUIRE(a.cols() == b.rows(), "DegradedBackend: inner dimensions must agree");
  // Snapshot the usable channels once per product: the self-test fences
  // lanes between matmuls, not inside one.
  std::vector<std::size_t> channels;
  for (std::size_t ch = 0; ch < bank_.wavelengths(); ++ch) {
    if (!bank_.lane(0, ch).fenced && !bank_.lane(1, ch).fenced) channels.push_back(ch);
  }
  if (channels.empty()) return Matrix(a.rows(), b.cols());

  const double a_scale = converters::max_abs_scale(a.data());
  const double b_scale = converters::max_abs_scale(b.data());
  Matrix an(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) an.data()[i] = a.data()[i] / a_scale;
  Matrix bt = b.transposed();
  for (auto& v : bt.data()) v /= b_scale;

  Matrix c(a.rows(), b.cols());
  const double rescale = a_scale * b_scale;
  const std::size_t k = a.cols();
  const std::size_t nl = channels.size();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto x = an.row(i);
    for (std::size_t j = 0; j < b.cols(); ++j) {
      const auto y = bt.row(j);
      double acc = 0.0;
      for (std::size_t base = 0; base < k; base += nl) {
        const std::size_t len = std::min(nl, k - base);
        for (std::size_t t = 0; t < len; ++t) {
          // Balanced-PD product on channel `channels[t]`: each element
          // rides the lane device that physically carries it.
          acc += bank_.encode(0, channels[t], x[base + t]) *
                 bank_.encode(1, channels[t], y[base + t]);
        }
      }
      c(i, j) = acc * rescale;
    }
  }
  count_events(a.rows(), k, b.cols(), nl);
  return c;
}

void DegradedBackend::count_events(std::size_t m, std::size_t k, std::size_t n,
                                   std::size_t usable_channels) {
  // Mirrors PhotonicGemm::count_events with the reduction chunked over
  // the surviving wavelengths.
  const std::size_t chunks = (k + usable_channels - 1) / usable_channels;
  for (std::size_t i0 = 0; i0 < m; i0 += cfg_.array_rows) {
    const std::size_t h = std::min(cfg_.array_rows, m - i0);
    for (std::size_t j0 = 0; j0 < n; j0 += cfg_.array_cols) {
      const std::size_t w = std::min(cfg_.array_cols, n - j0);
      events_.modulation_events += (h + w) * k;
      events_.ddot_ops += h * w * chunks;
      events_.detection_events += h * w * chunks;
      events_.macs += h * w * k;
      events_.adc_events += h * w;
      events_.cycles += chunks;
    }
  }
}

}  // namespace pdac::faults
