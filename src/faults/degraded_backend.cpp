#include "faults/degraded_backend.hpp"

#include <algorithm>
#include <vector>

#include "common/require.hpp"
#include "converters/quantizer.hpp"
#include "ptc/tile_scheduler.hpp"

namespace pdac::faults {

DegradedBackend::DegradedBackend(const LaneBank& bank, DegradedBackendConfig cfg)
    : bank_(bank), cfg_(cfg), pool_(std::make_unique<ThreadPool>(cfg.threads)) {
  PDAC_REQUIRE(cfg_.array_rows >= 1 && cfg_.array_cols >= 1,
               "DegradedBackend: array dimensions must be positive");
}

Matrix DegradedBackend::matmul(const Matrix& a, const Matrix& b) {
  PDAC_REQUIRE(a.cols() == b.rows(), "DegradedBackend: inner dimensions must agree");
  // Snapshot the usable channels once per product: the self-test fences
  // lanes between matmuls, not inside one.
  std::vector<std::size_t> channels;
  for (std::size_t ch = 0; ch < bank_.wavelengths(); ++ch) {
    if (!bank_.lane(0, ch).fenced && !bank_.lane(1, ch).fenced) channels.push_back(ch);
  }
  if (channels.empty()) return Matrix(a.rows(), b.cols());

  const double a_scale = converters::max_abs_scale(a.data());
  const double b_scale = converters::max_abs_scale(b.data());
  Matrix an(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) an.data()[i] = a.data()[i] / a_scale;
  Matrix bt = b.transposed();
  for (auto& v : bt.data()) v /= b_scale;

  const std::size_t k = a.cols();
  const std::size_t nl = channels.size();

  // Amortized encoding through the *specific lane devices* that carry
  // each element: position p in a reduction rides channel p mod nl, on
  // the x rail for A elements and the y rail for B elements.  Each row /
  // column is encoded once and broadcast across every tile that uses it
  // (the serial path encoded it once per output element).
  Matrix ae(an.rows(), k);
  Matrix be(bt.rows(), k);
  pool_->parallel_for(an.rows() + bt.rows(),
                      [&](std::size_t begin, std::size_t end, std::size_t) {
                        for (std::size_t r = begin; r < end; ++r) {
                          const bool a_side = r < an.rows();
                          const std::size_t row = a_side ? r : r - an.rows();
                          const auto src = a_side ? an.row(row) : bt.row(row);
                          auto dst = a_side ? ae.row(row) : be.row(row);
                          for (std::size_t p = 0; p < k; ++p) {
                            dst[p] = bank_.encode(a_side ? 0 : 1, channels[p % nl], src[p]);
                          }
                        }
                      });

  Matrix c(a.rows(), b.cols());
  const double rescale = a_scale * b_scale;
  const std::vector<ptc::Tile> tiles =
      ptc::partition_tiles(a.rows(), b.cols(), cfg_.array_rows, cfg_.array_cols);
  ptc::for_each_tile(*pool_, tiles, [&](std::size_t t, std::size_t) {
    const ptc::Tile& tile = tiles[t];
    for (std::size_t i = tile.row0; i < tile.row0 + tile.rows; ++i) {
      const auto x = ae.row(i);
      for (std::size_t j = tile.col0; j < tile.col0 + tile.cols; ++j) {
        const auto y = be.row(j);
        // Ascending p is the serial chunk order (base, then in-chunk
        // lane), so the accumulation is bit-identical to the serial path.
        double acc = 0.0;
        for (std::size_t p = 0; p < k; ++p) acc += x[p] * y[p];
        c(i, j) = acc * rescale;
      }
    }
  });
  count_events(a.rows(), k, b.cols(), nl);
  return c;
}

void DegradedBackend::count_events(std::size_t m, std::size_t k, std::size_t n,
                                   std::size_t usable_channels) {
  // Mirrors PhotonicGemm::count_events with the reduction chunked over
  // the surviving wavelengths.
  const std::size_t chunks = (k + usable_channels - 1) / usable_channels;
  for (std::size_t i0 = 0; i0 < m; i0 += cfg_.array_rows) {
    const std::size_t h = std::min(cfg_.array_rows, m - i0);
    for (std::size_t j0 = 0; j0 < n; j0 += cfg_.array_cols) {
      const std::size_t w = std::min(cfg_.array_cols, n - j0);
      events_.modulation_events += (h + w) * k;
      events_.ddot_ops += h * w * chunks;
      events_.detection_events += h * w * chunks;
      events_.macs += h * w * k;
      events_.adc_events += h * w;
      events_.cycles += chunks;
    }
  }
}

}  // namespace pdac::faults
