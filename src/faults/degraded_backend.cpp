#include "faults/degraded_backend.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/require.hpp"
#include "converters/quantizer.hpp"
#include "ptc/tile_scheduler.hpp"

namespace pdac::faults {

DegradedBackend::DegradedBackend(const LaneBank& bank, DegradedBackendConfig cfg)
    : bank_(bank),
      cfg_(cfg),
      pool_(std::make_unique<ThreadPool>(cfg.threads)),
      cache_(cfg.cache) {
  PDAC_REQUIRE(cfg_.array_rows >= 1 && cfg_.array_cols >= 1,
               "DegradedBackend: array dimensions must be positive");
}

std::vector<std::size_t> DegradedBackend::surviving_channels() const {
  // Snapshot the usable channels once per product: the self-test fences
  // lanes between matmuls, not inside one.
  std::vector<std::size_t> channels;
  for (std::size_t ch = 0; ch < bank_.wavelengths(); ++ch) {
    if (!bank_.lane(0, ch).fenced && !bank_.lane(1, ch).fenced) channels.push_back(ch);
  }
  return channels;
}

double DegradedBackend::encode_lane(std::size_t rail, std::size_t channel, double r) const {
  // Stale table (epoch moved since the entry ensure()) falls back to the
  // live model: a missed ensure() costs speed, never correctness.
  if (cfg_.use_lane_table && table_.fresh(bank_)) return table_.encode(rail, channel, r);
  return bank_.encode(rail, channel, r);
}

Matrix DegradedBackend::matmul(const Matrix& a, const Matrix& b) {
  PDAC_REQUIRE(a.cols() == b.rows(), "DegradedBackend: inner dimensions must agree");
  if (cfg_.use_lane_table) table_.ensure(bank_);
  std::vector<std::size_t> channels = surviving_channels();
  if (channels.empty()) return Matrix(a.rows(), b.cols());
  const ptc::PreparedOperand pb = prepare_b(b, std::move(channels));
  return run_prepared(a, pb);
}

Matrix DegradedBackend::matmul_cached(const Matrix& a, const Matrix& b,
                                      const nn::WeightHandle& weight) {
  PDAC_REQUIRE(a.cols() == b.rows(), "DegradedBackend: inner dimensions must agree");
  if (cfg_.use_lane_table) table_.ensure(bank_);
  std::vector<std::size_t> channels = surviving_channels();
  if (channels.empty()) return Matrix(a.rows(), b.cols());

  std::shared_ptr<const ptc::PreparedOperand> pb =
      cache_.lookup(weight.id, weight.version, bank_.epoch());
  if (pb != nullptr && pb->channels != channels) {
    // The epoch matched but the packing did not — a fence was applied
    // directly to a lane without bump_epoch().  Refuse the entry.
    cache_.erase(weight.id);
    pb = nullptr;
  }
  if (pb == nullptr) {
    pb = std::make_shared<const ptc::PreparedOperand>(prepare_b(b, std::move(channels)));
    cache_.insert(weight.id, weight.version, pb);
  }
  return run_prepared(a, *pb);
}

ptc::PreparedOperand DegradedBackend::prepare_b(const Matrix& b,
                                                std::vector<std::size_t> channels) {
  ptc::PreparedOperand pb;
  pb.rows = b.rows();
  pb.cols = b.cols();
  pb.scale = converters::max_abs_scale(b.data());
  pb.epoch = bank_.epoch();
  pb.channels = std::move(channels);

  const std::size_t k = b.rows();
  const std::size_t nl = pb.channels.size();

  // Transpose + normalize, then encode through the *specific lane
  // devices* that carry each element: position p in a reduction rides
  // channel p mod nl on the y rail (B side).  Each column is encoded
  // once and broadcast across every tile that uses it.
  Matrix bt = b.transposed();
  for (auto& v : bt.data()) v /= pb.scale;
  pb.encoded = Matrix(bt.rows(), k);
  pool_->parallel_for(bt.rows(), [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t r = begin; r < end; ++r) {
      const auto src = bt.row(r);
      auto dst = pb.encoded.row(r);
      for (std::size_t p = 0; p < k; ++p) {
        dst[p] = encode_lane(1, pb.channels[p % nl], src[p]);
      }
    }
  });
  return pb;
}

Matrix DegradedBackend::run_prepared(const Matrix& a, const ptc::PreparedOperand& pb) {
  const std::size_t k = a.cols();
  const std::size_t nl = pb.channels.size();

  // A-side pipeline through the x-rail lanes, fresh every product.
  const double a_scale = converters::max_abs_scale(a.data());
  Matrix an(a.rows(), k);
  for (std::size_t i = 0; i < a.size(); ++i) an.data()[i] = a.data()[i] / a_scale;
  Matrix ae(a.rows(), k);
  pool_->parallel_for(a.rows(), [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t r = begin; r < end; ++r) {
      const auto src = an.row(r);
      auto dst = ae.row(r);
      for (std::size_t p = 0; p < k; ++p) {
        dst[p] = encode_lane(0, pb.channels[p % nl], src[p]);
      }
    }
  });

  Matrix c(a.rows(), pb.cols);
  const double rescale = a_scale * pb.scale;
  const std::vector<ptc::Tile> tiles =
      ptc::partition_tiles(a.rows(), pb.cols, cfg_.array_rows, cfg_.array_cols);
  ptc::for_each_tile(*pool_, tiles, [&](std::size_t t, std::size_t) {
    const ptc::Tile& tile = tiles[t];
    for (std::size_t i = tile.row0; i < tile.row0 + tile.rows; ++i) {
      const auto x = ae.row(i);
      for (std::size_t j = tile.col0; j < tile.col0 + tile.cols; ++j) {
        const auto y = pb.encoded.row(j);
        // Ascending p is the serial chunk order (base, then in-chunk
        // lane), so the accumulation is bit-identical to the serial path.
        double acc = 0.0;
        for (std::size_t p = 0; p < k; ++p) acc += x[p] * y[p];
        c(i, j) = acc * rescale;
      }
    }
  });
  count_events(a.rows(), k, pb.cols, nl);
  return c;
}

void DegradedBackend::count_events(std::size_t m, std::size_t k, std::size_t n,
                                   std::size_t usable_channels) {
  // Mirrors PhotonicGemm::count_events with the reduction chunked over
  // the surviving wavelengths.
  const std::size_t chunks = (k + usable_channels - 1) / usable_channels;
  for (std::size_t i0 = 0; i0 < m; i0 += cfg_.array_rows) {
    const std::size_t h = std::min(cfg_.array_rows, m - i0);
    for (std::size_t j0 = 0; j0 < n; j0 += cfg_.array_cols) {
      const std::size_t w = std::min(cfg_.array_cols, n - j0);
      events_.modulation_events += (h + w) * k;
      events_.ddot_ops += h * w * chunks;
      events_.detection_events += h * w * chunks;
      events_.macs += h * w * k;
      events_.adc_events += h * w;
      events_.cycles += chunks;
    }
  }
}

}  // namespace pdac::faults
