#include "faults/self_test.hpp"

#include <algorithm>
#include <cstdint>

#include "common/math_utils.hpp"
#include "common/require.hpp"

namespace pdac::faults {

namespace {

/// Worst floored-relative error over a sparse, evenly strided sweep of
/// the signed code space — the screening observable.  Uses the same 5 %
/// full-scale floor as PerturbedPdacModel::worst_error so budgets are
/// comparable between screening and the full characterization.
double screen_lane(const Lane& lane, const converters::Quantizer& quant,
                   std::size_t probes) {
  const auto max_code = quant.max_code();
  const auto span = static_cast<std::int64_t>(max_code) * 2;
  const auto n = std::max<std::size_t>(probes, 2);
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = static_cast<std::int32_t>(
        -static_cast<std::int64_t>(max_code) +
        span * static_cast<std::int64_t>(i) / static_cast<std::int64_t>(n - 1));
    if (c == 0) continue;
    worst = std::max(
        worst, math::relative_error(lane.model.encode_code(c), quant.decode(c), 5e-2));
  }
  return worst;
}

}  // namespace

SelfTestReport run_self_test(LaneBank& bank, const SelfTestConfig& cfg) {
  std::vector<std::size_t> all(bank.lanes());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return run_self_test(bank, all, cfg);
}

SelfTestReport run_self_test(LaneBank& bank, const std::vector<std::size_t>& lanes,
                             const SelfTestConfig& cfg) {
  PDAC_REQUIRE(cfg.error_budget > 0.0, "run_self_test: error budget must be positive");
  PDAC_REQUIRE(cfg.screen_probes >= 2, "run_self_test: need at least 2 screen probes");
  SelfTestReport report;
  report.lanes.reserve(lanes.size());
  const std::size_t fenced_before = bank.fenced_lanes();

  for (const std::size_t i : lanes) {
    Lane& lane = bank.lane(i);
    LaneOutcome out;
    out.lane = i;
    if (lane.fenced) {
      out.verdict = LaneVerdict::kDead;
      ++report.dead;
      report.lanes.push_back(out);
      continue;
    }

    out.screen_error_before = screen_lane(lane, bank.quantizer(), cfg.screen_probes);
    out.screen_error_after = out.screen_error_before;
    report.probe_events += cfg.screen_probes;

    if (out.screen_error_before <= cfg.error_budget) {
      out.verdict = LaneVerdict::kHealthy;
      ++report.healthy;
    } else if (!cfg.attempt_recovery) {
      lane.fenced = true;
      out.verdict = LaneVerdict::kDead;
      ++report.dead;
    } else {
      const core::TrimResult trim = core::trim_pdac(lane.model, cfg.trim);
      ++report.retrims;
      report.probe_events += static_cast<std::size_t>(trim.probes_used);
      out.retrimmed = true;
      out.fit_failed = trim.fit_failed;
      out.screen_error_after = screen_lane(lane, bank.quantizer(), cfg.screen_probes);
      report.probe_events += cfg.screen_probes;
      if (!trim.fit_failed && out.screen_error_after <= cfg.error_budget) {
        out.verdict = LaneVerdict::kRecovered;
        ++report.recovered;
      } else {
        lane.fenced = true;
        out.verdict = LaneVerdict::kDead;
        ++report.dead;
      }
    }
    report.lanes.push_back(out);
  }
  // Re-trims rewrite TIA weights (even reverted fits probe through the
  // correction port) and fresh fences change channel packing: either
  // way, encodings prepared against this bank are stale (DESIGN.md §10).
  if (report.retrims > 0 || bank.fenced_lanes() != fenced_before) bank.bump_epoch();
  return report;
}

std::string to_string(LaneVerdict verdict) {
  switch (verdict) {
    case LaneVerdict::kHealthy: return "healthy";
    case LaneVerdict::kRecovered: return "recovered";
    case LaneVerdict::kDead: return "dead";
  }
  return "?";
}

}  // namespace pdac::faults
