#include "faults/drift_tracker.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace pdac::faults {

DriftTracker::DriftTracker(DriftTrackerConfig cfg) : cfg_(cfg) {
  PDAC_REQUIRE(cfg_.alpha > 0.0 && cfg_.alpha <= 1.0, "DriftTracker: alpha in (0, 1]");
  PDAC_REQUIRE(cfg_.drift_level > 0.0 && cfg_.excursion_level > cfg_.drift_level,
               "DriftTracker: need 0 < drift_level < excursion_level");
  PDAC_REQUIRE(cfg_.sample_cap >= cfg_.excursion_level,
               "DriftTracker: sample_cap must reach the excursion threshold");
}

void DriftTracker::resize(std::size_t lanes) { level_.resize(lanes, 0.0); }

double DriftTracker::clamp_sample(double sample) const {
  // NaN (a dead PD can NaN a residual) is maximal evidence, not zero.
  if (std::isnan(sample)) return cfg_.sample_cap;
  return std::clamp(sample, 0.0, cfg_.sample_cap);
}

void DriftTracker::fold(std::size_t lane, double sample) {
  if (lane >= level_.size()) level_.resize(lane + 1, 0.0);
  level_[lane] = (1.0 - cfg_.alpha) * level_[lane] + cfg_.alpha * sample;
}

void DriftTracker::observe_residual(const std::vector<std::size_t>& lanes, double ratio) {
  const double sample = clamp_sample(ratio);
  for (const std::size_t lane : lanes) fold(lane, sample);
  ++residual_samples_;
}

void DriftTracker::observe_probe(std::size_t lane, double excess) {
  fold(lane, clamp_sample(excess));
  ++probe_samples_;
}

void DriftTracker::reset() {
  // Levels only: the sample counters are cumulative telemetry (how much
  // evidence ever fed the tracker) and survive recalibration.
  std::fill(level_.begin(), level_.end(), 0.0);
}

double DriftTracker::level(std::size_t lane) const {
  return lane < level_.size() ? level_[lane] : 0.0;
}

DriftState DriftTracker::state(std::size_t lane) const {
  const double l = level(lane);
  if (l < cfg_.drift_level) return DriftState::kClean;
  if (l < cfg_.excursion_level) return DriftState::kDrifting;
  return DriftState::kExcursion;
}

bool DriftTracker::any_excursion() const {
  for (const double l : level_) {
    if (l >= cfg_.excursion_level) return true;
  }
  return false;
}

std::size_t DriftTracker::excursion_lanes() const {
  std::size_t n = 0;
  for (const double l : level_) n += l >= cfg_.excursion_level ? 1 : 0;
  return n;
}

DriftSnapshot DriftTracker::snapshot() const {
  DriftSnapshot snap;
  snap.lanes = level_.size();
  snap.residual_samples = residual_samples_;
  snap.probe_samples = probe_samples_;
  for (std::size_t l = 0; l < level_.size(); ++l) {
    switch (state(l)) {
      case DriftState::kClean: ++snap.clean; break;
      case DriftState::kDrifting: ++snap.drifting; break;
      case DriftState::kExcursion: ++snap.excursions; break;
    }
    snap.worst_level = std::max(snap.worst_level, level_[l]);
  }
  return snap;
}

std::string_view to_string(DriftState state) {
  switch (state) {
    case DriftState::kClean: return "clean";
    case DriftState::kDrifting: return "drifting";
    case DriftState::kExcursion: return "excursion";
  }
  return "?";
}

}  // namespace pdac::faults
