#include "faults/guarded_backend.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <utility>

#include "common/math_utils.hpp"
#include "common/require.hpp"
#include "common/simd.hpp"
#include "converters/quantizer.hpp"

namespace pdac::faults {

namespace {

/// Raw running max-abs (the fold inside converters::max_abs_scale,
/// without the all-zero → 1.0 collapse), so appended deltas can be
/// checked against the exact bound the scale was derived from.  The fold
/// ignores NaN on either side, so it is order-independent — b and bᵀ
/// storage orders yield the same bits.
double raw_abs_max(std::span<const double> values) {
  double m = 0.0;
  for (const double v : values) m = std::max(m, std::abs(v));
  return m;
}

}  // namespace

ptc::ExecutionPath auto_execution_path(const LaneBank& bank) {
  LaneEncodeTable table;
  table.ensure(bank);
  if (table.quant_available()) return ptc::ExecutionPath::kKernelQuant;
  if (simd::has_fast_path()) return ptc::ExecutionPath::kKernelSimd;
  return ptc::ExecutionPath::kKernel;
}

GuardedBackend::GuardedBackend(LaneBank& bank, GuardedBackendConfig cfg,
                               HealthMonitor* shared_monitor)
    : bank_(bank),
      cfg_(cfg),
      pool_(std::make_unique<ThreadPool>(cfg.threads)),
      cache_(cfg.cache),
      kv_cache_(cfg.kv_cache),
      policy_(cfg.escalation),
      tracker_(cfg.drift) {
  PDAC_REQUIRE(cfg_.array_rows >= 1 && cfg_.array_cols >= 1,
               "GuardedBackend: array dimensions must be positive");
  cfg_.guard.enabled = true;  // detection is the point of this backend
  if (shared_monitor != nullptr) monitor_ = shared_monitor;
  tracker_.resize(bank_.lanes());
  recalibrate();  // construction is a trusted calibration point
}

void GuardedBackend::recalibrate() {
  const std::int32_t max_code = bank_.quantizer().max_code();
  const std::size_t codes = static_cast<std::size_t>(max_code) * 2 + 1;
  golden_.assign(bank_.lanes(), std::vector<double>(codes, 0.0));
  for (std::size_t l = 0; l < bank_.lanes(); ++l) {
    const Lane& lane = bank_.lane(l);
    for (std::size_t ci = 0; ci < codes; ++ci) {
      const auto code = static_cast<std::int32_t>(static_cast<std::int64_t>(ci) - max_code);
      golden_[l][ci] = lane.model.encode_code(code);
    }
  }
  golden_epoch_ = bank_.epoch();
  // Golden re-snapshot is a trusted point: residuals now measure
  // divergence from the NEW state, so the accumulated drift levels are
  // repaid — carrying them forward would re-trigger the proactive rung
  // against evidence the re-trim just erased.
  tracker_.reset();
}

void GuardedBackend::roll_retrim_window() {
  const EscalationConfig& e = cfg_.escalation;
  if (e.window_products == 0) return;
  if (products_run_ - window_start_product_ >= e.window_products) {
    // Advance by whole window lengths: the budget refills exactly at the
    // boundary multiple, however long the backend idled past it.
    window_start_product_ +=
        ((products_run_ - window_start_product_) / e.window_products) * e.window_products;
    window_retrims_spent_ = 0;
  }
}

bool GuardedBackend::retrim_allowed() const {
  const EscalationConfig& e = cfg_.escalation;
  return e.window_products == 0 || window_retrims_spent_ < e.window_retrims;
}

void GuardedBackend::note_retrim() {
  ++window_retrims_spent_;
  last_retrim_product_ = products_run_;
  retrimmed_ever_ = true;
}

void GuardedBackend::observe_probes(const SelfTestReport& report) {
  const double budget = policy_.config().self_test.error_budget;
  if (budget <= 0.0) return;
  for (const LaneOutcome& lane : report.lanes) {
    // Already-fenced lanes are reported dead without being screened:
    // no measurement, no sample.
    if (lane.verdict == LaneVerdict::kDead && !lane.retrimmed &&
        lane.screen_error_before == 0.0) {
      continue;
    }
    // Over-budget excess: a healthy lane's intrinsic encoder error sits
    // near (below) the budget by construction, so it reads ~0 here.
    tracker_.observe_probe(lane.lane, std::max(0.0, lane.screen_error_after / budget - 1.0));
  }
}

void GuardedBackend::maybe_proactive_retrim() {
  const EscalationConfig& e = cfg_.escalation;
  if (!e.proactive_retrim || e.max_retrims == 0) return;  // serving clamp gates this too
  if (!tracker_.any_excursion()) return;
  if (bank_.usable_channels() == 0) return;
  if (e.retrim_cooldown_products > 0 && retrimmed_ever_ &&
      products_run_ - last_retrim_product_ < e.retrim_cooldown_products) {
    // Hysteresis dwell: keep absorbing and watching; re-check next
    // product.  Deliberately not counted as governed — the dwell is the
    // policy working, not the budget refusing.
    return;
  }
  if (!retrim_allowed()) {
    monitor_->record_governed_retrim();
    return;
  }
  const SelfTestReport report =
      run_self_test(bank_, implicated_lanes(surviving_channels()), e.self_test);
  monitor_->record_self_test(report);
  monitor_->record_action(GuardAction::kRetrim);
  monitor_->record_proactive_retrim();
  observe_probes(report);
  note_retrim();
  recalibrate();  // post-self-test lane state is trusted
}

void GuardedBackend::product_entry() {
  ++products_run_;
  roll_retrim_window();
  maybe_proactive_retrim();
}

void GuardedBackend::force_retrim() {
  const SelfTestReport report =
      run_self_test(bank_, implicated_lanes(surviving_channels()), policy_.config().self_test);
  monitor_->record_self_test(report);
  monitor_->record_action(GuardAction::kRetrim);
  observe_probes(report);
  note_retrim();
  recalibrate();
}

void GuardedBackend::attach_storm(FaultInjector* injector, std::uint64_t steps_per_tile) {
  storm_ = injector;
  storm_steps_per_tile_ = injector != nullptr ? steps_per_tile : 0;
  storm_clock_ = injector != nullptr ? injector->step() : 0;
}

double GuardedBackend::golden_encode(std::size_t rail, std::size_t channel, double r) const {
  const converters::Quantizer& quant = bank_.quantizer();
  const std::int32_t code = quant.encode(math::clamp_unit(r));
  return golden_[rail * bank_.wavelengths() + channel]
                [static_cast<std::size_t>(code + quant.max_code())];
}

double GuardedBackend::encode_current(std::size_t rail, std::size_t channel, double r) const {
  // Falls back to the live model whenever the table is stale (a rung just
  // moved the epoch and ensure() has not run yet), so a missed ensure()
  // can cost speed but never correctness.
  if (cfg_.use_lane_table && table_.fresh(bank_)) return table_.encode(rail, channel, r);
  return bank_.encode(rail, channel, r);
}

bool GuardedBackend::quant_live() const {
  return cfg_.path == ptc::ExecutionPath::kKernelQuant && cfg_.use_lane_table &&
         table_.fresh(bank_) && table_.quant_available();
}

std::vector<std::size_t> GuardedBackend::surviving_channels() const {
  std::vector<std::size_t> channels;
  for (std::size_t ch = 0; ch < bank_.wavelengths(); ++ch) {
    if (!bank_.lane(0, ch).fenced && !bank_.lane(1, ch).fenced) channels.push_back(ch);
  }
  return channels;
}

std::vector<std::size_t> GuardedBackend::implicated_lanes(
    const std::vector<std::size_t>& channels) const {
  // Both rails of every channel the packing uses: a reduction element on
  // channel ch touches the x-rail lane (A side) and the y-rail lane (B
  // side), and the guard cannot tell the rails apart from one residual.
  std::vector<std::size_t> lanes;
  lanes.reserve(channels.size() * LaneBank::kRails);
  for (std::size_t rail = 0; rail < LaneBank::kRails; ++rail) {
    for (const std::size_t ch : channels) lanes.push_back(rail * bank_.wavelengths() + ch);
  }
  return lanes;
}

ptc::PreparedOperand GuardedBackend::prepare_b(const Matrix& b,
                                               std::vector<std::size_t> channels) const {
  return prepare_b_src(BSource{&b, nullptr}, std::move(channels));
}

ptc::PreparedOperand GuardedBackend::prepare_b_src(const BSource& bsrc,
                                                   std::vector<std::size_t> channels) const {
  // Stage Bᵀ normalized whichever orientation the caller holds: the max
  // fold is order-independent and transposition only reorders the same
  // doubles, so both routes are bit-identical to prepare_b of B.
  Matrix bt = bsrc.bt != nullptr ? *bsrc.bt : bsrc.b->transposed();
  ptc::PreparedOperand pb;
  pb.rows = bt.cols();
  pb.cols = bt.rows();
  pb.abs_max = raw_abs_max(bt.data());
  pb.scale = pb.abs_max > 0.0 ? pb.abs_max : 1.0;
  pb.epoch = bank_.epoch();
  pb.channels = std::move(channels);

  const std::size_t k = pb.rows;
  const std::size_t nl = pb.channels.size();

  // Dual encode: data through the lanes' CURRENT state, references
  // through the GOLDEN snapshot.  On healthy hardware the two LUTs are
  // bit-identical, so the guard's clean residual is pure reassociation.
  for (double& v : bt.data()) v /= pb.scale;
  pb.encoded = Matrix(bt.rows(), k);
  pb.reference = Matrix(bt.rows(), k);
  // Integer-tier staging: when the quant tier is live, the lane table
  // also hands out the int16 code behind every current-state amplitude
  // (decode(code) == encoded bitwise on an on-grid bank).
  const bool quant = quant_live();
  if (quant) pb.qcodes.resize(bt.rows(), k);
  pool_->parallel_for(bt.rows(), [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t r = begin; r < end; ++r) {
      const auto src = bt.row(r);
      auto cur = pb.encoded.row(r);
      auto gold = pb.reference.row(r);
      for (std::size_t p = 0; p < k; ++p) {
        const std::size_t ch = pb.channels[p % nl];
        cur[p] = encode_current(1, ch, src[p]);
        gold[p] = golden_encode(1, ch, src[p]);
      }
      if (quant) {
        auto qrow = pb.qcodes.row(r);
        for (std::size_t p = 0; p < k; ++p) {
          qrow[p] = table_.encode_code(1, pb.channels[p % nl], src[p]);
        }
      }
    }
  });

  // Checksum stripes over the golden reference (one row per array-width
  // column stripe), cached with the operand.  The column-only cheap mode
  // never runs the row lanes these stripes feed, so it skips building
  // them — half the guard's prepare work and cache bytes.
  pb.checksum_stripe = cfg_.array_cols;
  if (!cfg_.guard.column_only) {
    const std::size_t stripes = (pb.cols + cfg_.array_cols - 1) / cfg_.array_cols;
    pb.checksum = Matrix(stripes, k);
    std::fill(pb.checksum.data().begin(), pb.checksum.data().end(), 0.0);
    for (std::size_t j = 0; j < pb.cols; ++j) {
      const auto src = pb.reference.row(j);
      const auto dst = pb.checksum.row(j / cfg_.array_cols);
      for (std::size_t p = 0; p < k; ++p) dst[p] += src[p];
    }
  }
  return pb;
}

std::shared_ptr<const ptc::PreparedOperand> GuardedBackend::obtain_b(
    const Matrix& b, const nn::WeightHandle* weight) {
  std::vector<std::size_t> channels = surviving_channels();
  if (weight == nullptr) {
    return std::make_shared<const ptc::PreparedOperand>(prepare_b(b, std::move(channels)));
  }
  std::shared_ptr<const ptc::PreparedOperand> pb =
      cache_.lookup(weight->id, weight->version, bank_.epoch());
  if (pb != nullptr && pb->channels != channels) {
    // Epoch matched but the packing did not: a fence landed without a
    // bump_epoch().  Refuse the entry (same belt-and-braces check as
    // DegradedBackend).
    cache_.erase(weight->id);
    pb = nullptr;
  }
  if (pb == nullptr) {
    pb = std::make_shared<const ptc::PreparedOperand>(prepare_b(b, std::move(channels)));
    cache_.insert(weight->id, weight->version, pb);
  }
  return pb;
}

bool GuardedBackend::append_kv_cols(ptc::PreparedOperand& pb, const Matrix& kv) const {
  // kv = Bᵀ source (n × k): rows [pb.cols, kv.rows()) are the new output
  // columns.  This axis never pads, so every matrix must sit exactly at
  // the logical shape; any structural surprise means the entry is not
  // ours to extend.
  if (pb.rows == 0 || pb.rows != kv.cols() || pb.cols > kv.rows()) return false;
  const std::size_t k = pb.rows;
  const std::size_t old_n = pb.cols;
  const std::size_t new_n = kv.rows();
  if (pb.encoded.rows() != old_n || pb.encoded.cols() != k) return false;
  if (pb.reference.rows() != old_n || pb.reference.cols() != k) return false;
  const bool quant = quant_live();
  if (quant) {
    if (pb.qcodes.rows() != old_n || pb.qcodes.cols() != k) return false;
  } else if (pb.qcodes.size() > 0) {
    return false;
  }
  const std::size_t old_stripes = (old_n + cfg_.array_cols - 1) / cfg_.array_cols;
  if (cfg_.guard.column_only) {
    if (pb.checksum.size() > 0) return false;
  } else {
    if (pb.checksum_stripe != cfg_.array_cols || pb.checksum.rows() != old_stripes ||
        pb.checksum.cols() != k) {
      return false;
    }
  }
  if (new_n == old_n) return true;
  // Scale stability: the resident scale must still bound the delta, or
  // every already-encoded element would renormalize — a rebuild.
  // `!(dmax <= abs_max)` keeps NaN on the rebuild side.
  double dmax = 0.0;
  for (std::size_t j = old_n; j < new_n; ++j) {
    dmax = std::max(dmax, raw_abs_max(kv.row(j)));
  }
  if (!(dmax <= pb.abs_max)) return false;

  const std::size_t nl = pb.channels.size();
  pb.encoded.resize(new_n, k);
  pb.reference.resize(new_n, k);
  if (quant) pb.qcodes.resize(new_n, k);
  for (std::size_t j = old_n; j < new_n; ++j) {
    const auto src = kv.row(j);
    auto cur = pb.encoded.row(j);
    auto gold = pb.reference.row(j);
    for (std::size_t p = 0; p < k; ++p) {
      const double v = src[p] / pb.scale;
      const std::size_t ch = pb.channels[p % nl];
      cur[p] = encode_current(1, ch, v);
      gold[p] = golden_encode(1, ch, v);
    }
    if (quant) {
      auto qrow = pb.qcodes.row(j);
      for (std::size_t p = 0; p < k; ++p) {
        qrow[p] = table_.encode_code(1, pb.channels[p % nl], src[p] / pb.scale);
      }
    }
  }
  if (!cfg_.guard.column_only) {
    // Continue the running stripe sums in the same ascending-j order a
    // fresh prepare uses, so the accumulated doubles match bitwise.
    const std::size_t new_stripes = (new_n + cfg_.array_cols - 1) / cfg_.array_cols;
    pb.checksum.resize(new_stripes, k);
    for (std::size_t s = old_stripes; s < new_stripes; ++s) {
      const auto row = pb.checksum.row(s);
      for (std::size_t p = 0; p < k; ++p) row[p] = 0.0;
    }
    for (std::size_t j = old_n; j < new_n; ++j) {
      const auto src = pb.reference.row(j);
      const auto dst = pb.checksum.row(j / cfg_.array_cols);
      for (std::size_t p = 0; p < k; ++p) dst[p] += src[p];
    }
  }
  pb.cols = new_n;
  return true;
}

bool GuardedBackend::append_kv_rows(ptc::PreparedOperand& pb, const Matrix& kv) const {
  // kv = B source (k × n): rows [pb.rows, kv.rows()) extend the
  // reduction axis — one new COLUMN of every encoded/reference/checksum
  // row, written into geometrically padded column capacity (the physical
  // matrices may be wider than pb.rows; consumers read spans bounded by
  // the logical k).
  if (pb.cols == 0 || pb.cols != kv.cols() || pb.rows > kv.rows()) return false;
  const std::size_t n = pb.cols;
  const std::size_t old_k = pb.rows;
  const std::size_t new_k = kv.rows();
  if (pb.encoded.rows() != n || pb.encoded.cols() < old_k) return false;
  if (pb.reference.rows() != n || pb.reference.cols() != pb.encoded.cols()) return false;
  const bool quant = quant_live();
  if (quant) {
    if (pb.qcodes.rows() != n || pb.qcodes.cols() != pb.encoded.cols()) return false;
  } else if (pb.qcodes.size() > 0) {
    return false;
  }
  const std::size_t stripes = (n + cfg_.array_cols - 1) / cfg_.array_cols;
  if (cfg_.guard.column_only) {
    if (pb.checksum.size() > 0) return false;
  } else {
    if (pb.checksum_stripe != cfg_.array_cols || pb.checksum.rows() != stripes ||
        pb.checksum.cols() != pb.encoded.cols()) {
      return false;
    }
  }
  if (new_k == old_k) return true;
  double dmax = 0.0;
  for (std::size_t r = old_k; r < new_k; ++r) {
    dmax = std::max(dmax, raw_abs_max(kv.row(r)));
  }
  if (!(dmax <= pb.abs_max)) return false;

  const std::size_t nl = pb.channels.size();
  ptc::grow_col_capacity(pb.encoded, new_k);
  ptc::grow_col_capacity(pb.reference, new_k);
  if (quant) ptc::grow_col_capacity(pb.qcodes, new_k);
  for (std::size_t j = 0; j < n; ++j) {
    const auto cur = pb.encoded.row(j);
    const auto gold = pb.reference.row(j);
    for (std::size_t p = old_k; p < new_k; ++p) {
      const double v = kv(p, j) / pb.scale;
      // Channel packing is a function of the absolute reduction
      // position p, so appended positions pack exactly as a fresh
      // prepare would pack them.
      const std::size_t ch = pb.channels[p % nl];
      cur[p] = encode_current(1, ch, v);
      gold[p] = golden_encode(1, ch, v);
    }
    if (quant) {
      const auto qrow = pb.qcodes.row(j);
      for (std::size_t p = old_k; p < new_k; ++p) {
        qrow[p] = table_.encode_code(1, pb.channels[p % nl], kv(p, j) / pb.scale);
      }
    }
  }
  if (!cfg_.guard.column_only) {
    ptc::grow_col_capacity(pb.checksum, new_k);
    // Fresh stripe positions start from exact zero (capacity padding is
    // unspecified), then accumulate in the fresh prepare's ascending-j
    // order.
    for (std::size_t s = 0; s < stripes; ++s) {
      const auto row = pb.checksum.row(s);
      for (std::size_t p = old_k; p < new_k; ++p) row[p] = 0.0;
    }
    for (std::size_t j = 0; j < n; ++j) {
      const auto src = pb.reference.row(j);
      const auto dst = pb.checksum.row(j / cfg_.array_cols);
      for (std::size_t p = old_k; p < new_k; ++p) dst[p] += src[p];
    }
  }
  pb.rows = new_k;
  return true;
}

std::shared_ptr<const ptc::PreparedOperand> GuardedBackend::obtain_kv(
    const BSource& src, const nn::KvHandle& handle) {
  std::vector<std::size_t> channels = surviving_channels();
  std::shared_ptr<ptc::PreparedOperand> pb = kv_cache_.lookup(handle.id);
  if (pb != nullptr) {
    // Epoch + packing must both hold (the same belt-and-braces pair as
    // obtain_b): any re-trim, fence, or repack since the entry was
    // stamped means its encodings and golden references describe a bank
    // that no longer exists — appends must not bridge that.
    const bool current = pb->epoch == bank_.epoch() && pb->channels == channels;
    const bool appended =
        current && (handle.axis == nn::KvAxis::kCols ? append_kv_cols(*pb, *src.bt)
                                                     : append_kv_rows(*pb, *src.b));
    if (appended) {
      kv_cache_.record_append();
      kv_cache_.updated(handle.id);
      return pb;
    }
    kv_cache_.record_rebuild();
  }
  pb = std::make_shared<ptc::PreparedOperand>(prepare_b_src(src, std::move(channels)));
  kv_cache_.insert(handle.id, pb);
  return pb;
}

Matrix GuardedBackend::matmul(const Matrix& a, const Matrix& b) {
  PDAC_REQUIRE(a.cols() == b.rows(), "GuardedBackend: inner dimensions must agree");
  if (bank_.usable_channels() == 0) return Matrix(a.rows(), b.cols());
  product_entry();  // may re-trim (and bump the epoch) before obtain_b
  if (cfg_.use_lane_table) table_.ensure(bank_);
  return run_guarded(a, BSource{&b, nullptr}, obtain_b(b, nullptr), nullptr);
}

Matrix GuardedBackend::matmul_cached(const Matrix& a, const Matrix& b,
                                     const nn::WeightHandle& weight) {
  PDAC_REQUIRE(a.cols() == b.rows(), "GuardedBackend: inner dimensions must agree");
  if (bank_.usable_channels() == 0) return Matrix(a.rows(), b.cols());
  product_entry();
  if (cfg_.use_lane_table) table_.ensure(bank_);
  return run_guarded(a, BSource{&b, nullptr}, obtain_b(b, &weight), &weight);
}

Matrix GuardedBackend::matmul_kv(const Matrix& a, const Matrix& kv,
                                 const nn::KvHandle& handle) {
  const bool cols_axis = handle.axis == nn::KvAxis::kCols;
  PDAC_REQUIRE(a.cols() == (cols_axis ? kv.cols() : kv.rows()),
               "GuardedBackend: inner dimensions must agree");
  const std::size_t n = cols_axis ? kv.rows() : kv.cols();
  if (bank_.usable_channels() == 0) return Matrix(a.rows(), n);
  product_entry();
  if (cfg_.use_lane_table) table_.ensure(bank_);
  BSource src;
  if (cols_axis) {
    src.bt = &kv;  // the history IS Bᵀ — no transposed copy
  } else {
    src.b = &kv;
  }
  return run_guarded(a, src, obtain_kv(src, handle), nullptr, &handle);
}

ptc::TileCheck GuardedBackend::run_tile(const ptc::Tile& tile, std::size_t t, const Matrix& ae,
                                        const Matrix& ae_gold, const Matrix& xsum,
                                        const Matrix& bdata, const ptc::PreparedOperand& pb,
                                        double rescale, Matrix& c,
                                        const std::vector<DotUpset>* upsets,
                                        const CodeMatrix* qae) const {
  const std::size_t k = ae.cols();
  // Numeric tier for the data dots (cfg_.path).  The integer tier needs
  // the staged codes on BOTH sides and the prepared (not live-re-encoded)
  // B data — the caller certifies that by passing `qae`; `&bdata ==
  // &pb.encoded` re-checks the B side.  Checksum references below always
  // stay double-precision golden dots, whatever the data tier.
  // `>= k` + physical-shape mirror rather than `== k`: rows-axis KV
  // appends pad the column capacity, and the dots below take k
  // explicitly, so the padded tail is never read.
  const bool quant_tile = qae != nullptr && pb.qcodes.cols() >= k &&
                          pb.qcodes.cols() == pb.encoded.cols() &&
                          pb.qcodes.rows() == pb.encoded.rows() && &bdata == &pb.encoded;
  const bool simd_tile = !quant_tile && cfg_.path != ptc::ExecutionPath::kKernel;
  const std::int32_t mc = bank_.quantizer().max_code();
  const double mc2 = static_cast<double>(mc) * static_cast<double>(mc);
  std::vector<double> rsum(tile.rows, 0.0);
  std::vector<double> csum(tile.cols, 0.0);
  for (std::size_t i = tile.row0; i < tile.row0 + tile.rows; ++i) {
    const auto x = ae.row(i);
    for (std::size_t j = tile.col0; j < tile.col0 + tile.cols; ++j) {
      const auto y = bdata.row(j);
      // Ascending p matches the serial chunk order (and DegradedBackend),
      // so accumulation is bit-identical across thread counts and to a
      // post-fence degraded re-run.  The fast tiers reassociate (SIMD)
      // or round exactly once (quant: Σ codes / max_code², exact int64
      // sum) — both inside the guard band the verdicts are judged by.
      double acc = 0.0;
      if (quant_tile) {
        acc = static_cast<double>(
                  simd::dot_i16(qae->row(i).data(), pb.qcodes.row(j).data(), k, mc)) /
              mc2;
      } else if (simd_tile) {
        acc = simd::dot(x.data(), y.data(), k);
      } else {
        for (std::size_t p = 0; p < k; ++p) acc += x[p] * y[p];
      }
      if (upsets != nullptr) {
        // Transient detector glitches land on the raw accumulator, so
        // the checksum lanes see the corrupted value too.
        for (const DotUpset& u : *upsets) {
          if (u.row == i && u.col == j) acc += u.delta;
        }
      }
      c(i, j) = acc * rescale;
      rsum[i - tile.row0] += acc;
      csum[j - tile.col0] += acc;
    }
  }

  ptc::TileCheck check;
  check.tile = t;
  const double mag = static_cast<double>(k);
  const double tol_row = ptc::guard_tolerance(cfg_.guard, k, tile.cols, mag);
  const double tol_col = ptc::guard_tolerance(cfg_.guard, k, tile.rows, mag);
  // Hysteresis band (DESIGN.md §16): three verdict zones per comparison.
  //   res ≤ tol             clean
  //   tol < res ≤ band·tol  drift — absorbed (recorded, no escalation)
  //   res > band·tol        excursion — mismatch, the ladder fires
  // band == 1 collapses the middle zone and reproduces the pre-drift
  // verdicts bit-for-bit.  NaN is always a mismatch, never "in band".
  const double band = std::max(1.0, cfg_.guard.drift_band);
  const auto note = [&check, band](double residual, double tol) {
    if (std::isnan(residual) || residual > check.worst_residual) {
      check.worst_residual = residual;
      check.tolerance = tol;
    }
    if (std::isnan(residual) || residual > band * tol) {
      check.ok = false;
    } else if (residual > tol) {
      check.drift_ratio = std::max(check.drift_ratio, residual / tol);
    }
  };
  // Out-of-band lane bookkeeping for single-error correction: one bad
  // row lane × one bad column lane pinpoints the corrupted element.
  // "Bad" is judged at the *outer* band edge, so lanes drifting inside
  // the band cannot blur a hard strike's single-error signature.
  std::size_t bad_rows = 0, bad_cols = 0;
  std::size_t sec_row = 0, sec_col = 0;
  double row_delta = 0.0, col_delta = 0.0;
  // Row lanes: Σ_j tile(i,j) vs ⟨golden x′_i, cached golden Σ_j y′_j⟩.
  // The column-only cheap mode skips them (and their spare-lane charge).
  if (!cfg_.guard.column_only) {
    const auto ysum = pb.checksum.row(tile.col0 / pb.checksum_stripe);
    for (std::size_t i = tile.row0; i < tile.row0 + tile.rows; ++i) {
      const auto xr = ae_gold.row(i);
      double ref = 0.0;
      for (std::size_t p = 0; p < k; ++p) ref += xr[p] * ysum[p];
      const double res = rsum[i - tile.row0] - ref;
      note(std::abs(res), tol_row);
      if (std::isnan(res) || std::abs(res) > band * tol_row) {
        ++bad_rows;
        sec_row = i;
        row_delta = res;
      }
    }
  }
  // Column lanes: Σ_i tile(i,j) vs ⟨golden Σ_i x′_i, golden y′_j⟩.
  const auto xs = xsum.row(tile.row0 / cfg_.array_rows);
  for (std::size_t j = tile.col0; j < tile.col0 + tile.cols; ++j) {
    const auto yr = pb.reference.row(j);
    double ref = 0.0;
    for (std::size_t p = 0; p < k; ++p) ref += xs[p] * yr[p];
    const double res = csum[j - tile.col0] - ref;
    note(std::abs(res), tol_col);
    if (std::isnan(res) || std::abs(res) > band * tol_col) {
      ++bad_cols;
      sec_col = j;
      col_delta = res;
    }
  }

  // Single-error correction: both residuals estimate the same raw
  // accumulator error, so when they agree (within both bands) the
  // element at the intersection is corrected digitally and no escalation
  // rung fires.  Lane-class faults corrupt whole encode rows/columns and
  // never present this signature, so they still escalate.  The agreement
  // window widens with the hysteresis band: a strike landing on lanes
  // drifting mid-band sees each delta contaminated by up to band·tol of
  // absorbed wander, and the correction may carry that much of it into
  // the element — bounded by exactly the error the band already admits.
  if (!check.ok && cfg_.guard.sec_correction && !cfg_.guard.column_only && bad_rows == 1 &&
      bad_cols == 1 && std::isfinite(row_delta) && std::isfinite(col_delta) &&
      std::abs(row_delta - col_delta) <= band * (tol_row + tol_col)) {
    c(sec_row, sec_col) -= row_delta * rescale;
    check.ok = true;
    check.corrected = 1;
  }
  return check;
}

std::size_t GuardedBackend::fence_diverged_lanes(const std::vector<std::size_t>& channels) {
  // Full calibration-table readback against the golden snapshot: the
  // escalation endpoint can afford to probe every code, which makes the
  // fence decision exact — a lane is fenced iff its transfer diverged
  // from the state the references were calibrated under.
  const std::int32_t max_code = bank_.quantizer().max_code();
  const std::size_t codes = static_cast<std::size_t>(max_code) * 2 + 1;
  std::size_t fenced = 0;
  std::size_t probes = 0;
  for (const std::size_t flat : implicated_lanes(channels)) {
    Lane& lane = bank_.lane(flat);
    if (lane.fenced) continue;
    bool diverged = false;
    for (std::size_t ci = 0; ci < codes; ++ci) {
      const auto code = static_cast<std::int32_t>(static_cast<std::int64_t>(ci) - max_code);
      const double out = lane.model.encode_code(code);
      ++probes;
      if (!(out == golden_[flat][ci])) {  // NaN-safe inequality
        diverged = true;
        break;
      }
    }
    if (diverged) {
      lane.fenced = true;
      ++fenced;
      monitor_->record_implicated_lane(flat);
    }
  }
  monitor_->record_probe_events(probes);
  if (fenced > 0) bank_.bump_epoch();
  return fenced;
}

ptc::EventCounter GuardedBackend::tile_events(const ptc::Tile& tile, std::size_t k,
                                              std::size_t usable_channels) const {
  // Mirrors PhotonicGemm's broadcast-amortized tile-step contract with
  // the reduction chunked over the surviving wavelengths.
  ptc::EventCounter ev;
  const std::size_t chunks = (k + usable_channels - 1) / usable_channels;
  ev.modulation_events = (tile.rows + tile.cols) * k;
  ev.ddot_ops = tile.rows * tile.cols * chunks;
  ev.detection_events = tile.rows * tile.cols * chunks;
  ev.macs = tile.rows * tile.cols * k;
  ev.adc_events = tile.rows * tile.cols;
  ev.cycles = chunks;
  return ev;
}

Matrix GuardedBackend::run_guarded(const Matrix& a, const BSource& bsrc,
                                   std::shared_ptr<const ptc::PreparedOperand> pb,
                                   const nn::WeightHandle* weight,
                                   const nn::KvHandle* kv) {
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = pb->cols;

  // A-side pipeline: normalize once, then dual-encode (current + golden)
  // under the operand's channel packing.
  const double a_scale = converters::max_abs_scale(a.data());
  Matrix an(m, k);
  for (std::size_t i = 0; i < a.size(); ++i) an.data()[i] = a.data()[i] / a_scale;
  Matrix ae(m, k);
  Matrix ae_gold(m, k);
  CodeMatrix qae;  // A-side int16 codes, staged only when the quant tier is live
  Matrix xsum;
  const std::size_t row_stripes = (m + cfg_.array_rows - 1) / cfg_.array_rows;
  const auto encode_a = [&](const std::vector<std::size_t>& channels) {
    const std::size_t nl = channels.size();
    // qcodes may carry padded column capacity past the logical k
    // (rows-axis KV appends) — `>=` certifies the staged prefix.
    const bool quant = quant_live() && pb->qcodes.cols() >= k;
    if (quant) qae.resize(m, k);
    pool_->parallel_for(m, [&](std::size_t begin, std::size_t end, std::size_t) {
      for (std::size_t r = begin; r < end; ++r) {
        const auto src = an.row(r);
        auto cur = ae.row(r);
        auto gold = ae_gold.row(r);
        for (std::size_t p = 0; p < k; ++p) {
          const std::size_t ch = channels[p % nl];
          cur[p] = encode_current(0, ch, src[p]);
          gold[p] = golden_encode(0, ch, src[p]);
        }
        if (quant) {
          auto qrow = qae.row(r);
          for (std::size_t p = 0; p < k; ++p) {
            qrow[p] = table_.encode_code(0, channels[p % nl], src[p]);
          }
        }
      }
    });
    // A row-stripe checksums over the golden encodes.
    xsum.resize(row_stripes, k);
    std::fill(xsum.data().begin(), xsum.data().end(), 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      const auto src = ae_gold.row(i);
      const auto dst = xsum.row(i / cfg_.array_rows);
      for (std::size_t p = 0; p < k; ++p) dst[p] += src[p];
    }
  };
  encode_a(pb->channels);

  Matrix c(m, n);
  const double rescale = a_scale * pb->scale;
  const std::vector<ptc::Tile> tiles =
      ptc::partition_tiles(m, n, cfg_.array_rows, cfg_.array_cols);
  std::vector<ptc::TileCheck> checks(tiles.size());

  ptc::GuardOutcome outcome;
  outcome.enabled = true;
  outcome.tiles_checked = tiles.size();

  // Data-side B encodings: the cached/prepared matrix on the fast path; a
  // live copy is materialized only when a storm or a repair makes the
  // prepared encodes stale.
  const Matrix* bdata = &pb->encoded;
  Matrix be_live;
  Matrix bn;  // normalized B, lazily built for live re-encodes
  const auto ensure_bn = [&] {
    if (bn.size() != 0) return;
    bn = bsrc.bt != nullptr ? *bsrc.bt : bsrc.b->transposed();
    for (double& v : bn.data()) v /= pb->scale;
  };
  const auto reencode_b_cols = [&](std::size_t col0, std::size_t cols,
                                   const std::vector<std::size_t>& channels) {
    ensure_bn();
    if (be_live.size() == 0) {
      be_live = pb->encoded;
      bdata = &be_live;
    }
    const std::size_t nl = channels.size();
    for (std::size_t j = col0; j < col0 + cols; ++j) {
      const auto src = bn.row(j);
      auto dst = be_live.row(j);
      for (std::size_t p = 0; p < k; ++p) dst[p] = bank_.encode(1, channels[p % nl], src[p]);
    }
  };
  const auto reencode_a_rows = [&](std::size_t row0, std::size_t rows,
                                   const std::vector<std::size_t>& channels) {
    const std::size_t nl = channels.size();
    for (std::size_t i = row0; i < row0 + rows; ++i) {
      const auto src = an.row(i);
      auto dst = ae.row(i);
      for (std::size_t p = 0; p < k; ++p) dst[p] = bank_.encode(0, channels[p % nl], src[p]);
    }
  };

  // Transient upsets strike the initial pass only — a retry (or the SEC
  // correction that obviates it) sees clean hardware.
  const std::vector<DotUpset> upsets = std::move(pending_upsets_);
  pending_upsets_.clear();
  const std::vector<DotUpset>* initial_upsets = upsets.empty() ? nullptr : &upsets;

  // ---- initial pass -------------------------------------------------
  const bool storm = storm_ != nullptr && storm_steps_per_tile_ > 0;
  if (storm) {
    // Serialized tile timeline: the injector's clock advances before
    // every tile step, and each step re-encodes its operand slices
    // through the live lanes (the hardware modulates per tile step
    // anyway), so a fault landing between tiles corrupts exactly the
    // tiles after it.
    for (std::size_t t = 0; t < tiles.size(); ++t) {
      storm_clock_ += storm_steps_per_tile_;
      storm_->advance_to(storm_clock_);
      reencode_a_rows(tiles[t].row0, tiles[t].rows, pb->channels);
      reencode_b_cols(tiles[t].col0, tiles[t].cols, pb->channels);
      checks[t] = run_tile(tiles[t], t, ae, ae_gold, xsum, *bdata, *pb, rescale, c,
                           initial_upsets);
    }
  } else {
    const Matrix& bd = *bdata;
    // The staged codes ride along iff the quant tier certified this
    // product (qae sized by encode_a); run_tile re-checks per tile.
    const CodeMatrix* qa = qae.rows() == m ? &qae : nullptr;
    ptc::for_each_tile(*pool_, tiles, [&](std::size_t t, std::size_t) {
      checks[t] = run_tile(tiles[t], t, ae, ae_gold, xsum, bd, *pb, rescale, c, initial_upsets,
                           qa);
    });
  }
  {
    const std::size_t nl = pb->channels.size();
    const std::size_t chunks = (k + nl - 1) / nl;
    for (const ptc::Tile& tile : tiles) {
      events_ += tile_events(tile, k, nl);
      outcome.checksum_events += ptc::checksum_lane_events(tile.rows, tile.cols, k, chunks,
                                                           cfg_.guard.column_only);
    }
  }

  std::vector<std::size_t> bad;
  for (std::size_t t = 0; t < tiles.size(); ++t) {
    const ptc::TileCheck& check = checks[t];
    if (!check.ok) bad.push_back(t);
    outcome.tiles_corrected += check.corrected;
    if (std::isnan(check.worst_residual) || check.worst_residual > outcome.worst_residual) {
      outcome.worst_residual = check.worst_residual;
      outcome.worst_tolerance = check.tolerance;
    }
  }
  outcome.mismatched_tiles = bad.size();
  if (!bad.empty()) outcome.first_mismatch = bad.front();

  // Aggregate the final verdicts' absorbed-drift evidence (re-runs
  // overwrite their tile's check, so this reflects what the product
  // actually returned).
  const auto tally_drift = [&checks, &outcome] {
    for (const ptc::TileCheck& check : checks) {
      if (check.drift_ratio > 0.0) ++outcome.drift_tiles;
      outcome.worst_drift_ratio = std::max(outcome.worst_drift_ratio, check.drift_ratio);
    }
  };

  // Drift-evidence feed: one graded sample per product — the worst
  // residual/tolerance ratio of the initial pass — attributed to every
  // lane the packing used (one residual cannot name the lane).  Clean
  // products feed ratios ≪ 1 and decay the EWMA; in-band drift feeds
  // (1, band]; excursions feed capped large ratios.
  {
    double ratio = 0.0;
    for (const ptc::TileCheck& check : checks) {
      if (std::isnan(check.worst_residual)) {
        ratio = std::numeric_limits<double>::quiet_NaN();
        break;
      }
      if (check.tolerance > 0.0) ratio = std::max(ratio, check.worst_residual / check.tolerance);
    }
    tracker_.observe_residual(implicated_lanes(pb->channels), ratio);
  }

  // ---- escalation ladder -------------------------------------------
  EscalationState state;
  while (!bad.empty()) {
    // The windowed governor can veto the re-trim rung: the ladder then
    // degrades past it (retry → fence) instead of stalling, and the veto
    // is visible as a governed re-trim.
    const bool retrim_ok = retrim_allowed();
    const GuardAction action = policy_.next(state, retrim_ok);
    if (!retrim_ok && policy_.next(state, true) == GuardAction::kRetrim) {
      monitor_->record_governed_retrim();
    }
    monitor_->record_action(action);
    if (action == GuardAction::kGiveUp) break;

    bool repacked = false;
    switch (action) {
      case GuardAction::kRetry:
        ++state.retries;
        break;
      case GuardAction::kRetrim: {
        ++state.retrims;
        const SelfTestReport report =
            run_self_test(bank_, implicated_lanes(pb->channels), policy_.config().self_test);
        monitor_->record_self_test(report);
        observe_probes(report);
        note_retrim();
        recalibrate();  // post-self-test lane state is trusted
        repacked = true;
        break;
      }
      case GuardAction::kFence: {
        ++state.fences;
        fence_diverged_lanes(pb->channels);
        repacked = true;
        break;
      }
      default:
        break;
    }

    if (repacked) {
      std::vector<std::size_t> channels = surviving_channels();
      if (channels.empty()) {
        // Every channel fenced mid-recovery: the accelerator is offline.
        // Zero result, mirroring DegradedBackend's outage contract.
        monitor_->record_action(GuardAction::kGiveUp);
        tally_drift();
        monitor_->record_product(outcome);
        return Matrix(m, n);
      }
      // Re-prepare against the repaired/repacked bank: fresh current +
      // golden encodings and checksum stripes; refresh the cache so the
      // next product starts warm again.  The rung moved the epoch, so
      // re-ensure the coefficient table first (we are between parallel
      // regions here).
      if (cfg_.use_lane_table) table_.ensure(bank_);
      auto rebuilt =
          std::make_shared<ptc::PreparedOperand>(prepare_b_src(bsrc, std::move(channels)));
      if (weight != nullptr) cache_.insert(weight->id, weight->version, rebuilt);
      if (kv != nullptr) {
        // The resident KV entry described the pre-escalation bank; the
        // next decode step appends onto this rebuilt one instead.
        kv_cache_.insert(kv->id, rebuilt);
        kv_cache_.record_rebuild();
      }
      pb = rebuilt;
      encode_a(pb->channels);
      be_live = Matrix();
      bn = Matrix();
      bdata = &pb->encoded;
    }

    // Re-run the mismatching tiles through the live lanes.
    const std::size_t nl = pb->channels.size();
    const std::size_t chunks = (k + nl - 1) / nl;
    for (const std::size_t t : bad) {
      const ptc::Tile& tile = tiles[t];
      if (!repacked) {
        // Retry rung: re-encode just this tile's operand slices, the
        // hardware cost the rung actually pays.
        reencode_a_rows(tile.row0, tile.rows, pb->channels);
        reencode_b_cols(tile.col0, tile.cols, pb->channels);
      }
      checks[t] = run_tile(tile, t, ae, ae_gold, xsum, *bdata, *pb, rescale, c);
      outcome.tiles_corrected += checks[t].corrected;
      const ptc::EventCounter ev = tile_events(tile, k, nl);
      events_ += ev;
      monitor_->record_retry_events(ev);
      outcome.checksum_events += ptc::checksum_lane_events(tile.rows, tile.cols, k, chunks,
                                                           cfg_.guard.column_only);
    }
    std::vector<std::size_t> still_bad;
    for (const std::size_t t : bad) {
      if (!checks[t].ok) still_bad.push_back(t);
    }
    bad = std::move(still_bad);
  }

  tally_drift();
  monitor_->record_product(outcome);
  return c;
}

}  // namespace pdac::faults
