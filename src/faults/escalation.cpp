#include "faults/escalation.hpp"

namespace pdac::faults {

GuardAction EscalationPolicy::next(const EscalationState& state, bool retrim_available) const {
  if (state.retries < cfg_.max_retries) return GuardAction::kRetry;
  if (retrim_available && state.retrims < cfg_.max_retrims) return GuardAction::kRetrim;
  if (cfg_.allow_fence && state.fences < 1) return GuardAction::kFence;
  return GuardAction::kGiveUp;
}

std::string to_string(GuardAction action) {
  switch (action) {
    case GuardAction::kAccept: return "accept";
    case GuardAction::kRetry: return "retry";
    case GuardAction::kRetrim: return "retrim";
    case GuardAction::kFence: return "fence";
    case GuardAction::kGiveUp: return "give-up";
  }
  return "?";
}

}  // namespace pdac::faults
