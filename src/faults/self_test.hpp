// self_test.hpp — built-in self-test and recovery for a LaneBank.
//
// Production photonic parts ship with a calibration-probe path (the same
// one trimming uses); this module turns it into a runtime BIST.  Per
// lane:
//   1. screen: drive a sparse set of calibration codes and measure the
//      floored-relative error against the ideal transfer;
//   2. recover: a lane over budget is re-trimmed through core::trim_pdac
//      — drift-class faults (bias walk, TIA gain steps) live in the bank
//      weights and calibrate out; stuck MRRs and dead PDs do not respond
//      to TIA corrections, so the trim either fails its fit or leaves the
//      error over budget;
//   3. fence: unrecoverable lanes are marked dead so the mapper can mask
//      their wavelength instead of silently computing garbage.
//
// The report counts every probe measurement so the energy model can
// charge the self-test honestly (arch::recalibration_energy).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/trimming.hpp"
#include "faults/lane_bank.hpp"

namespace pdac::faults {

enum class LaneVerdict {
  kHealthy,    ///< screen error within budget, untouched
  kRecovered,  ///< was over budget, re-trim brought it back
  kDead,       ///< unrecoverable; lane fenced
};

struct SelfTestConfig {
  /// Worst floored-relative encode error a lane may show and still be
  /// trusted (default: the paper's 8.5 % approximation bound).
  double error_budget{0.085};
  /// Calibration codes probed per lane in the screening pass.
  std::size_t screen_probes{16};
  /// Attempt re-trim on over-budget lanes; false = detect-only, every
  /// over-budget lane is fenced immediately.
  bool attempt_recovery{true};
  core::TrimmingConfig trim{.probes_per_bank = 0, .revert_on_failure = true};
};

struct LaneOutcome {
  std::size_t lane{};
  LaneVerdict verdict{LaneVerdict::kHealthy};
  double screen_error_before{};
  double screen_error_after{};  ///< == before unless a re-trim ran
  bool retrimmed{false};
  bool fit_failed{false};  ///< trim declared the observable non-linear
};

struct SelfTestReport {
  std::vector<LaneOutcome> lanes;
  std::size_t healthy{};
  std::size_t recovered{};
  std::size_t dead{};
  /// Every calibration-code measurement made (screens + trim probes);
  /// feed to arch::recalibration_energy.
  std::size_t probe_events{};
  std::size_t retrims{};
};

/// Run the BIST over every lane, re-trimming and fencing in place.
/// Already-fenced lanes are reported dead without burning probes.
SelfTestReport run_self_test(LaneBank& bank, const SelfTestConfig& cfg = {});

/// Targeted BIST over a subset of flat lane indices — the escalation
/// ladder's re-trim rung screens only the lanes a mismatching product
/// actually used instead of the whole bank.  Same per-lane behaviour and
/// epoch semantics as the full run; duplicate indices are screened once
/// per occurrence (callers pass unique sets).
SelfTestReport run_self_test(LaneBank& bank, const std::vector<std::size_t>& lanes,
                             const SelfTestConfig& cfg = {});

std::string to_string(LaneVerdict verdict);

}  // namespace pdac::faults
