#include "common/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/require.hpp"

namespace pdac::math {

Matrix SvdResult::reconstruct() const {
  const std::size_t m = u.rows();
  const std::size_t n = v.rows();
  Matrix scaled(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) scaled(i, j) = u(i, j) * singular[j];
  }
  return matmul_reference(scaled, v.transposed());
}

SvdResult svd(const Matrix& a, double tol, int max_sweeps) {
  PDAC_REQUIRE(a.rows() >= a.cols() && a.cols() >= 1, "svd: needs m >= n >= 1");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();

  Matrix b = a;          // columns rotate toward mutual orthogonality
  Matrix v(n, n, 0.0);   // accumulated right rotations
  for (std::size_t i = 0; i < n; ++i) v(i, i) = 1.0;

  auto col_dot = [&b, m](std::size_t p, std::size_t q) {
    double s = 0.0;
    for (std::size_t r = 0; r < m; ++r) s += b(r, p) * b(r, q);
    return s;
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double alpha = col_dot(p, p);
        const double beta = col_dot(q, q);
        const double gamma = col_dot(p, q);
        if (std::abs(gamma) <= tol * std::sqrt(alpha * beta) + 1e-300) continue;
        converged = false;
        // Jacobi rotation zeroing the off-diagonal of the 2×2 Gram block.
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = std::copysign(1.0, zeta) /
                         (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::size_t r = 0; r < m; ++r) {
          const double bp = b(r, p);
          const double bq = b(r, q);
          b(r, p) = c * bp - s * bq;
          b(r, q) = s * bp + c * bq;
        }
        for (std::size_t r = 0; r < n; ++r) {
          const double vp = v(r, p);
          const double vq = v(r, q);
          v(r, p) = c * vp - s * vq;
          v(r, q) = s * vp + c * vq;
        }
      }
    }
    if (converged) break;
  }

  // Singular values are the column norms of the rotated matrix; sort
  // them (and the corresponding U/V columns) in non-increasing order.
  SvdResult res;
  res.singular.resize(n);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> norms(n);
  for (std::size_t j = 0; j < n; ++j) {
    double s = 0.0;
    for (std::size_t r = 0; r < m; ++r) s += b(r, j) * b(r, j);
    norms[j] = std::sqrt(s);
  }
  std::sort(order.begin(), order.end(),
            [&norms](std::size_t x, std::size_t y) { return norms[x] > norms[y]; });

  res.u = Matrix(m, n);
  res.v = Matrix(n, n);
  for (std::size_t jj = 0; jj < n; ++jj) {
    const std::size_t j = order[jj];
    res.singular[jj] = norms[j];
    // Zero singular value: keep a unit basis vector to stay orthonormal.
    const double inv = norms[j] > 0.0 ? 1.0 / norms[j] : 0.0;
    for (std::size_t r = 0; r < m; ++r) res.u(r, jj) = b(r, j) * inv;
    if (norms[j] == 0.0) res.u(jj < m ? jj : 0, jj) = 1.0;
    for (std::size_t r = 0; r < n; ++r) res.v(r, jj) = v(r, j);
  }
  return res;
}

}  // namespace pdac::math
