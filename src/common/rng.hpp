// rng.hpp — deterministic random sources for tests, sweeps, and synthetic
// workload weights.  Everything in the repository that uses randomness
// takes an explicit seed so experiments are reproducible run-to-run.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace pdac {

/// Seeded random generator with the convenience draws the experiments use.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  double gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  std::int64_t integer(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  std::vector<double> uniform_vector(std::size_t n, double lo, double hi) {
    std::vector<double> v(n);
    for (auto& x : v) x = uniform(lo, hi);
    return v;
  }

  std::vector<double> gaussian_vector(std::size_t n, double mean = 0.0, double stddev = 1.0) {
    std::vector<double> v(n);
    for (auto& x : v) x = gaussian(mean, stddev);
    return v;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace pdac
