// require.hpp — precondition checking for the public API.
//
// Library entry points validate their arguments with PDAC_REQUIRE, which
// throws std::invalid_argument with a message that names the violated
// condition.  Internal invariants use PDAC_ASSERT, which is compiled out
// in NDEBUG builds like the standard assert.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pdac {

/// Thrown when a public-API precondition is violated.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* cond, const char* file, int line,
                                            const std::string& msg) {
  std::ostringstream os;
  os << "precondition violated: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}
}  // namespace detail

}  // namespace pdac

#define PDAC_REQUIRE(cond, msg)                                            \
  do {                                                                     \
    if (!(cond)) ::pdac::detail::throw_precondition(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#ifdef NDEBUG
#define PDAC_ASSERT(cond) ((void)0)
#else
#define PDAC_ASSERT(cond)                                                  \
  do {                                                                     \
    if (!(cond)) ::pdac::detail::throw_precondition(#cond, __FILE__, __LINE__, "internal invariant"); \
  } while (false)
#endif
