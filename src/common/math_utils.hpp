// math_utils.hpp — numerical helpers shared across the library.
//
// Provides the pieces the P-DAC derivation needs (adaptive quadrature for
// the error integral of paper Eq. 17, golden-section minimization for the
// breakpoint search) plus small generic utilities.
#pragma once

#include <cmath>
#include <functional>
#include <vector>

namespace pdac::math {

inline constexpr double kPi = 3.141592653589793238462643383279502884;

/// Relative error |measured - reference| / |reference|; falls back to
/// absolute error when |reference| is below `floor` to avoid division
/// blow-up near zero (the paper's Eq. 17 integrand has this issue at r=0).
double relative_error(double measured, double reference, double floor = 1e-12);

/// True when |a-b| <= atol + rtol*max(|a|,|b|).
bool almost_equal(double a, double b, double rtol = 1e-9, double atol = 1e-12);

/// `n` evenly spaced samples covering [lo, hi] inclusive (n >= 2).
std::vector<double> linspace(double lo, double hi, std::size_t n);

/// Adaptive Simpson quadrature of `f` over [a, b] to tolerance `tol`.
/// Recursion depth is bounded; worst case degrades to the composite rule.
double integrate(const std::function<double(double)>& f, double a, double b,
                 double tol = 1e-10);

/// Result of a 1-D minimization.
struct MinimizeResult {
  double x{};     ///< argmin
  double value{}; ///< f(argmin)
  int iterations{};
};

/// Golden-section search for the minimum of a unimodal `f` on [lo, hi].
MinimizeResult golden_section_minimize(const std::function<double(double)>& f,
                                       double lo, double hi, double xtol = 1e-10);

/// Max of f over [lo, hi] by dense sampling followed by golden-section
/// refinement around the best sample.  Used for worst-case error scans.
MinimizeResult dense_maximize(const std::function<double(double)>& f, double lo,
                              double hi, std::size_t samples = 4096);

/// Clamp to [-1, 1]; the analog encoding domain of the P-DAC.
inline double clamp_unit(double x) { return x < -1.0 ? -1.0 : (x > 1.0 ? 1.0 : x); }

/// Solve min ‖A·x − b‖₂ by normal equations with partially pivoted
/// Gaussian elimination.  `a` is row-major with rows.size() ≥ unknowns;
/// used by the P-DAC trimming routine to fit TIA weights from probe
/// measurements.  Throws if the system is singular.
std::vector<double> solve_least_squares(const std::vector<std::vector<double>>& a,
                                        const std::vector<double>& b);

}  // namespace pdac::math
