#include "common/math_utils.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/require.hpp"

namespace pdac::math {

double relative_error(double measured, double reference, double floor) {
  const double denom = std::max(std::abs(reference), floor);
  return std::abs(measured - reference) / denom;
}

bool almost_equal(double a, double b, double rtol, double atol) {
  return std::abs(a - b) <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  PDAC_REQUIRE(n >= 2, "linspace needs at least two samples");
  std::vector<double> out(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) out[i] = lo + step * static_cast<double>(i);
  out.back() = hi;  // exact endpoint regardless of rounding
  return out;
}

namespace {

double simpson(double a, double fa, double b, double fb, double fm) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive(const std::function<double(double)>& f, double a, double fa, double b,
                double fb, double m, double fm, double whole, double tol, int depth) {
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpson(a, fa, m, fm, flm);
  const double right = simpson(m, fm, b, fb, frm);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return adaptive(f, a, fa, m, fm, lm, flm, left, 0.5 * tol, depth - 1) +
         adaptive(f, m, fm, b, fb, rm, frm, right, 0.5 * tol, depth - 1);
}

}  // namespace

double integrate(const std::function<double(double)>& f, double a, double b, double tol) {
  if (a == b) return 0.0;
  const double m = 0.5 * (a + b);
  const double fa = f(a);
  const double fb = f(b);
  const double fm = f(m);
  const double whole = simpson(a, fa, b, fb, fm);
  return adaptive(f, a, fa, b, fb, m, fm, whole, tol, /*depth=*/48);
}

MinimizeResult golden_section_minimize(const std::function<double(double)>& f, double lo,
                                       double hi, double xtol) {
  PDAC_REQUIRE(lo < hi, "golden_section_minimize needs lo < hi");
  constexpr double invphi = 0.6180339887498948482;  // 1/phi
  double a = lo, b = hi;
  double c = b - (b - a) * invphi;
  double d = a + (b - a) * invphi;
  double fc = f(c), fd = f(d);
  int iters = 0;
  while (std::abs(b - a) > xtol) {
    ++iters;
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - (b - a) * invphi;
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + (b - a) * invphi;
      fd = f(d);
    }
    if (iters > 10'000) break;  // xtol below double resolution
  }
  const double x = 0.5 * (a + b);
  return MinimizeResult{x, f(x), iters};
}

MinimizeResult dense_maximize(const std::function<double(double)>& f, double lo, double hi,
                              std::size_t samples) {
  PDAC_REQUIRE(samples >= 3, "dense_maximize needs at least three samples");
  const auto xs = linspace(lo, hi, samples);
  std::size_t best = 0;
  double best_val = f(xs[0]);
  for (std::size_t i = 1; i < xs.size(); ++i) {
    const double v = f(xs[i]);
    if (v > best_val) {
      best_val = v;
      best = i;
    }
  }
  const double a = xs[best == 0 ? 0 : best - 1];
  const double b = xs[best + 1 >= xs.size() ? xs.size() - 1 : best + 1];
  if (a == b) return MinimizeResult{xs[best], best_val, 0};
  auto neg = [&f](double x) { return -f(x); };
  auto r = golden_section_minimize(neg, a, b, 1e-12);
  if (-r.value < best_val) return MinimizeResult{xs[best], best_val, r.iterations};
  return MinimizeResult{r.x, -r.value, r.iterations};
}

std::vector<double> solve_least_squares(const std::vector<std::vector<double>>& a,
                                        const std::vector<double>& b) {
  PDAC_REQUIRE(!a.empty() && a.size() == b.size(), "solve_least_squares: shape mismatch");
  const std::size_t m = a.size();
  const std::size_t n = a.front().size();
  PDAC_REQUIRE(m >= n && n >= 1, "solve_least_squares: need rows >= unknowns >= 1");
  for (const auto& row : a) {
    PDAC_REQUIRE(row.size() == n, "solve_least_squares: ragged matrix");
  }

  // Normal equations: (AᵀA)·x = Aᵀb.
  std::vector<std::vector<double>> ata(n, std::vector<double>(n, 0.0));
  std::vector<double> atb(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      atb[i] += a[r][i] * b[r];
      for (std::size_t j = i; j < n; ++j) ata[i][j] += a[r][i] * a[r][j];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) ata[i][j] = ata[j][i];
  }

  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(ata[r][col]) > std::abs(ata[pivot][col])) pivot = r;
    }
    PDAC_REQUIRE(std::abs(ata[pivot][col]) > 1e-14, "solve_least_squares: singular system");
    std::swap(ata[col], ata[pivot]);
    std::swap(atb[col], atb[pivot]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = ata[r][col] / ata[col][col];
      for (std::size_t c = col; c < n; ++c) ata[r][c] -= f * ata[col][c];
      atb[r] -= f * atb[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double sum = atb[ri];
    for (std::size_t c = ri + 1; c < n; ++c) sum -= ata[ri][c] * x[c];
    x[ri] = sum / ata[ri][ri];
  }
  return x;
}

}  // namespace pdac::math
