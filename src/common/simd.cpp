#include "common/simd.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define PDAC_SIMD_X86 1
#else
#define PDAC_SIMD_X86 0
#endif

namespace pdac::simd {
namespace {

// ---------------------------------------------------------------------------
// Portable tier: 4-way unrolled with independent partial sums.  The loop
// bodies are written so -O2/-O3 autovectorization takes them on any
// baseline ISA (SSE2/NEON); with no vector unit they are still ~4-way
// ILP.  The horizontal fold (a0+a1)+(a2+a3) and trailing scalar tail are
// the fixed reassociation policy shared with the AVX2 tier's fold.
// ---------------------------------------------------------------------------

double dot_portable(const double* x, const double* y, std::size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    a0 += x[p + 0] * y[p + 0];
    a1 += x[p + 1] * y[p + 1];
    a2 += x[p + 2] * y[p + 2];
    a3 += x[p + 3] * y[p + 3];
  }
  double acc = (a0 + a1) + (a2 + a3);
  for (; p < n; ++p) acc += x[p] * y[p];
  return acc;
}

double dot_self_portable(const double* x, std::size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    a0 += x[p + 0] * x[p + 0];
    a1 += x[p + 1] * x[p + 1];
    a2 += x[p + 2] * x[p + 2];
    a3 += x[p + 3] * x[p + 3];
  }
  double acc = (a0 + a1) + (a2 + a3);
  for (; p < n; ++p) acc += x[p] * x[p];
  return acc;
}

void dot4_portable(const double* x, const double* const y[4], std::size_t n,
                   double out[4]) {
  for (int b = 0; b < 4; ++b) out[b] = dot_portable(x, y[b], n);
}

#if PDAC_SIMD_X86

// ---------------------------------------------------------------------------
// AVX2+FMA tier.  Compiled with per-function target attributes so the
// translation unit builds under the portable baseline flags; only ever
// called after __builtin_cpu_supports confirms both features.
// ---------------------------------------------------------------------------

__attribute__((target("avx2,fma")))
double hfold(__m256d v) {
  alignas(32) double lane[4];
  _mm256_store_pd(lane, v);
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

__attribute__((target("avx2,fma")))
double dot_avx2(const double* x, const double* y, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t p = 0;
  for (; p + 8 <= n; p += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + p), _mm256_loadu_pd(y + p), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(x + p + 4), _mm256_loadu_pd(y + p + 4), acc1);
  }
  if (p + 4 <= n) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + p), _mm256_loadu_pd(y + p), acc0);
    p += 4;
  }
  double acc = hfold(_mm256_add_pd(acc0, acc1));
  for (; p < n; ++p) acc += x[p] * y[p];
  return acc;
}

__attribute__((target("avx2,fma")))
double dot_self_avx2(const double* x, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t p = 0;
  for (; p + 8 <= n; p += 8) {
    const __m256d v0 = _mm256_loadu_pd(x + p);
    const __m256d v1 = _mm256_loadu_pd(x + p + 4);
    acc0 = _mm256_fmadd_pd(v0, v0, acc0);
    acc1 = _mm256_fmadd_pd(v1, v1, acc1);
  }
  if (p + 4 <= n) {
    const __m256d v0 = _mm256_loadu_pd(x + p);
    acc0 = _mm256_fmadd_pd(v0, v0, acc0);
    p += 4;
  }
  double acc = hfold(_mm256_add_pd(acc0, acc1));
  for (; p < n; ++p) acc += x[p] * x[p];
  return acc;
}

__attribute__((target("avx2,fma")))
void dot4_avx2(const double* x, const double* const y[4], std::size_t n,
               double out[4]) {
  __m256d acc[4] = {_mm256_setzero_pd(), _mm256_setzero_pd(),
                    _mm256_setzero_pd(), _mm256_setzero_pd()};
  std::size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    const __m256d xv = _mm256_loadu_pd(x + p);
    acc[0] = _mm256_fmadd_pd(xv, _mm256_loadu_pd(y[0] + p), acc[0]);
    acc[1] = _mm256_fmadd_pd(xv, _mm256_loadu_pd(y[1] + p), acc[1]);
    acc[2] = _mm256_fmadd_pd(xv, _mm256_loadu_pd(y[2] + p), acc[2]);
    acc[3] = _mm256_fmadd_pd(xv, _mm256_loadu_pd(y[3] + p), acc[3]);
  }
  for (int b = 0; b < 4; ++b) {
    double s = hfold(acc[b]);
    for (std::size_t q = p; q < n; ++q) s += x[q] * y[b][q];
    out[b] = s;
  }
}

bool detect_avx2_fma() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

#else

bool detect_avx2_fma() { return false; }

#endif  // PDAC_SIMD_X86

const bool g_avx2 = detect_avx2_fma();

}  // namespace

const char* active_isa() { return g_avx2 ? "avx2+fma" : "portable"; }

bool has_fast_path() { return g_avx2; }

double dot(const double* x, const double* y, std::size_t n) {
#if PDAC_SIMD_X86
  if (g_avx2) return dot_avx2(x, y, n);
#endif
  return dot_portable(x, y, n);
}

double dot_self(const double* x, std::size_t n) {
#if PDAC_SIMD_X86
  if (g_avx2) return dot_self_avx2(x, n);
#endif
  return dot_self_portable(x, n);
}

void dot4(const double* x, const double* const y[4], std::size_t n, double out[4]) {
#if PDAC_SIMD_X86
  if (g_avx2) {
    dot4_avx2(x, y, n, out);
    return;
  }
#endif
  dot4_portable(x, y, n, out);
}

}  // namespace pdac::simd
