#include "common/simd.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define PDAC_SIMD_X86 1
#else
#define PDAC_SIMD_X86 0
#endif

namespace pdac::simd {
namespace {

// ---------------------------------------------------------------------------
// Portable tier: 4-way unrolled with independent partial sums.  The loop
// bodies are written so -O2/-O3 autovectorization takes them on any
// baseline ISA (SSE2/NEON); with no vector unit they are still ~4-way
// ILP.  The horizontal fold (a0+a1)+(a2+a3) and trailing scalar tail are
// the fixed reassociation policy shared with the AVX2 tier's fold.
// ---------------------------------------------------------------------------

double dot_portable(const double* x, const double* y, std::size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    a0 += x[p + 0] * y[p + 0];
    a1 += x[p + 1] * y[p + 1];
    a2 += x[p + 2] * y[p + 2];
    a3 += x[p + 3] * y[p + 3];
  }
  double acc = (a0 + a1) + (a2 + a3);
  for (; p < n; ++p) acc += x[p] * y[p];
  return acc;
}

double dot_self_portable(const double* x, std::size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    a0 += x[p + 0] * x[p + 0];
    a1 += x[p + 1] * x[p + 1];
    a2 += x[p + 2] * x[p + 2];
    a3 += x[p + 3] * x[p + 3];
  }
  double acc = (a0 + a1) + (a2 + a3);
  for (; p < n; ++p) acc += x[p] * x[p];
  return acc;
}

void dot4_portable(const double* x, const double* const y[4], std::size_t n,
                   double out[4]) {
  for (int b = 0; b < 4; ++b) out[b] = dot_portable(x, y[b], n);
}

// ---------------------------------------------------------------------------
// Integer tier (exact).  Every path computes the mathematical sum over ℤ
// — no rounding, no reassociation sensitivity — so portable and AVX2
// results are identical bits by construction.  int16×int16 fits int32
// (≤ 32767² < 2³¹), and |Σ| ≤ n·max_abs² stays far below 2⁶³ for any
// representable n, so the int64 accumulators never overflow.
// ---------------------------------------------------------------------------

std::int64_t dot_i16_portable(const std::int16_t* x, const std::int16_t* y, std::size_t n) {
  std::int64_t a0 = 0, a1 = 0, a2 = 0, a3 = 0;
  std::size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    a0 += static_cast<std::int32_t>(x[p + 0]) * y[p + 0];
    a1 += static_cast<std::int32_t>(x[p + 1]) * y[p + 1];
    a2 += static_cast<std::int32_t>(x[p + 2]) * y[p + 2];
    a3 += static_cast<std::int32_t>(x[p + 3]) * y[p + 3];
  }
  std::int64_t acc = (a0 + a1) + (a2 + a3);
  for (; p < n; ++p) acc += static_cast<std::int32_t>(x[p]) * y[p];
  return acc;
}

void dot4_i16_portable(const std::int16_t* x, const std::int16_t* const y[4], std::size_t n,
                       std::int64_t out[4]) {
  for (int b = 0; b < 4; ++b) out[b] = dot_i16_portable(x, y[b], n);
}

/// madd_epi16 iterations one int32 lane can absorb before draining: each
/// iteration adds two products, so the per-lane ceiling is 2·max_abs².
/// Always ≥ 1 (2·32767² = 2147352578 < 2³¹−1 covers the widest codes).
std::size_t drain_iters(std::int32_t max_abs) {
  const std::int64_t ma = std::int64_t{1} > max_abs ? 1 : std::int64_t{max_abs};
  const std::int64_t per_iter = 2 * ma * ma;
  const std::int64_t safe = 2147483647ll / per_iter;
  return safe < 1 ? 1 : static_cast<std::size_t>(safe);
}

#if PDAC_SIMD_X86

// ---------------------------------------------------------------------------
// AVX2+FMA tier.  Compiled with per-function target attributes so the
// translation unit builds under the portable baseline flags; only ever
// called after __builtin_cpu_supports confirms both features.
// ---------------------------------------------------------------------------

__attribute__((target("avx2,fma")))
double hfold(__m256d v) {
  alignas(32) double lane[4];
  _mm256_store_pd(lane, v);
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

__attribute__((target("avx2,fma")))
double dot_avx2(const double* x, const double* y, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t p = 0;
  for (; p + 8 <= n; p += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + p), _mm256_loadu_pd(y + p), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(x + p + 4), _mm256_loadu_pd(y + p + 4), acc1);
  }
  if (p + 4 <= n) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + p), _mm256_loadu_pd(y + p), acc0);
    p += 4;
  }
  double acc = hfold(_mm256_add_pd(acc0, acc1));
  for (; p < n; ++p) acc += x[p] * y[p];
  return acc;
}

__attribute__((target("avx2,fma")))
double dot_self_avx2(const double* x, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t p = 0;
  for (; p + 8 <= n; p += 8) {
    const __m256d v0 = _mm256_loadu_pd(x + p);
    const __m256d v1 = _mm256_loadu_pd(x + p + 4);
    acc0 = _mm256_fmadd_pd(v0, v0, acc0);
    acc1 = _mm256_fmadd_pd(v1, v1, acc1);
  }
  if (p + 4 <= n) {
    const __m256d v0 = _mm256_loadu_pd(x + p);
    acc0 = _mm256_fmadd_pd(v0, v0, acc0);
    p += 4;
  }
  double acc = hfold(_mm256_add_pd(acc0, acc1));
  for (; p < n; ++p) acc += x[p] * x[p];
  return acc;
}

__attribute__((target("avx2,fma")))
void dot4_avx2(const double* x, const double* const y[4], std::size_t n,
               double out[4]) {
  __m256d acc[4] = {_mm256_setzero_pd(), _mm256_setzero_pd(),
                    _mm256_setzero_pd(), _mm256_setzero_pd()};
  std::size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    const __m256d xv = _mm256_loadu_pd(x + p);
    acc[0] = _mm256_fmadd_pd(xv, _mm256_loadu_pd(y[0] + p), acc[0]);
    acc[1] = _mm256_fmadd_pd(xv, _mm256_loadu_pd(y[1] + p), acc[1]);
    acc[2] = _mm256_fmadd_pd(xv, _mm256_loadu_pd(y[2] + p), acc[2]);
    acc[3] = _mm256_fmadd_pd(xv, _mm256_loadu_pd(y[3] + p), acc[3]);
  }
  for (int b = 0; b < 4; ++b) {
    double s = hfold(acc[b]);
    for (std::size_t q = p; q < n; ++q) s += x[q] * y[b][q];
    out[b] = s;
  }
}

/// Fold a 8×int32 accumulator into the running 4×int64 accumulator.
__attribute__((target("avx2")))
__m256i widen_fold(__m256i acc64, __m256i acc32) {
  acc64 = _mm256_add_epi64(acc64, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(acc32)));
  return _mm256_add_epi64(acc64, _mm256_cvtepi32_epi64(_mm256_extracti128_si256(acc32, 1)));
}

__attribute__((target("avx2")))
std::int64_t hfold_i64(__m256i v) {
  alignas(32) std::int64_t lane[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lane), v);
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

__attribute__((target("avx2")))
std::int64_t dot_i16_avx2(const std::int16_t* x, const std::int16_t* y, std::size_t n,
                          std::size_t drain) {
  __m256i acc64 = _mm256_setzero_si256();
  std::size_t p = 0;
  while (p + 16 <= n) {
    __m256i acc32 = _mm256_setzero_si256();
    std::size_t iters = (n - p) / 16;
    if (iters > drain) iters = drain;
    for (std::size_t it = 0; it < iters; ++it, p += 16) {
      const __m256i xv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + p));
      const __m256i yv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + p));
      acc32 = _mm256_add_epi32(acc32, _mm256_madd_epi16(xv, yv));
    }
    acc64 = widen_fold(acc64, acc32);
  }
  std::int64_t acc = hfold_i64(acc64);
  for (; p < n; ++p) acc += static_cast<std::int32_t>(x[p]) * y[p];
  return acc;
}

__attribute__((target("avx2")))
void dot4_i16_avx2(const std::int16_t* x, const std::int16_t* const y[4], std::size_t n,
                   std::size_t drain, std::int64_t out[4]) {
  __m256i acc64[4] = {_mm256_setzero_si256(), _mm256_setzero_si256(),
                      _mm256_setzero_si256(), _mm256_setzero_si256()};
  std::size_t p = 0;
  while (p + 16 <= n) {
    __m256i acc32[4] = {_mm256_setzero_si256(), _mm256_setzero_si256(),
                        _mm256_setzero_si256(), _mm256_setzero_si256()};
    std::size_t iters = (n - p) / 16;
    if (iters > drain) iters = drain;
    for (std::size_t it = 0; it < iters; ++it, p += 16) {
      const __m256i xv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + p));
      for (int b = 0; b < 4; ++b) {
        const __m256i yv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y[b] + p));
        acc32[b] = _mm256_add_epi32(acc32[b], _mm256_madd_epi16(xv, yv));
      }
    }
    for (int b = 0; b < 4; ++b) acc64[b] = widen_fold(acc64[b], acc32[b]);
  }
  for (int b = 0; b < 4; ++b) {
    std::int64_t acc = hfold_i64(acc64[b]);
    for (std::size_t q = p; q < n; ++q) acc += static_cast<std::int32_t>(x[q]) * y[b][q];
    out[b] = acc;
  }
}

bool detect_avx2_fma() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

#else

bool detect_avx2_fma() { return false; }

#endif  // PDAC_SIMD_X86

const bool g_avx2 = detect_avx2_fma();

}  // namespace

const char* active_isa() { return g_avx2 ? "avx2+fma" : "portable"; }

bool has_fast_path() { return g_avx2; }

double dot(const double* x, const double* y, std::size_t n) {
#if PDAC_SIMD_X86
  if (g_avx2) return dot_avx2(x, y, n);
#endif
  return dot_portable(x, y, n);
}

double dot_self(const double* x, std::size_t n) {
#if PDAC_SIMD_X86
  if (g_avx2) return dot_self_avx2(x, n);
#endif
  return dot_self_portable(x, n);
}

void dot4(const double* x, const double* const y[4], std::size_t n, double out[4]) {
#if PDAC_SIMD_X86
  if (g_avx2) {
    dot4_avx2(x, y, n, out);
    return;
  }
#endif
  dot4_portable(x, y, n, out);
}

std::int64_t dot_i16(const std::int16_t* x, const std::int16_t* y, std::size_t n,
                     std::int32_t max_abs) {
#if PDAC_SIMD_X86
  if (g_avx2) return dot_i16_avx2(x, y, n, drain_iters(max_abs));
#endif
  (void)drain_iters;  // only the vector path needs the overflow cadence
  (void)max_abs;
  return dot_i16_portable(x, y, n);
}

std::int64_t dot_self_i16(const std::int16_t* x, std::size_t n, std::int32_t max_abs) {
  return dot_i16(x, x, n, max_abs);
}

void dot4_i16(const std::int16_t* x, const std::int16_t* const y[4], std::size_t n,
              std::int32_t max_abs, std::int64_t out[4]) {
#if PDAC_SIMD_X86
  if (g_avx2) {
    dot4_i16_avx2(x, y, n, drain_iters(max_abs), out);
    return;
  }
#endif
  (void)max_abs;
  dot4_i16_portable(x, y, n, out);
}

}  // namespace pdac::simd
