// units.hpp — lightweight dimensional types for the power/energy model.
//
// The architecture model mixes quantities that are easy to confuse
// (mW vs W, pJ vs J, GHz vs Hz).  These thin strong types make the unit
// part of the *type* at API boundaries while compiling down to a plain
// double.  Arithmetic between dimensions follows physics:
//   Power  * Time      -> Energy
//   Energy / Time      -> Power
//   Energy * Frequency -> Power
//   1 / Frequency      -> Time
#pragma once

#include <compare>
#include <cstdint>
#include <ostream>

namespace pdac::units {

namespace detail {

/// CRTP base providing the arithmetic every scalar quantity supports.
template <class Derived>
struct QuantityBase {
  double v{0.0};

  constexpr QuantityBase() = default;
  constexpr explicit QuantityBase(double value) : v(value) {}

  [[nodiscard]] constexpr double value() const { return v; }

  friend constexpr Derived operator+(Derived a, Derived b) { return Derived{a.v + b.v}; }
  friend constexpr Derived operator-(Derived a, Derived b) { return Derived{a.v - b.v}; }
  friend constexpr Derived operator-(Derived a) { return Derived{-a.v}; }
  friend constexpr Derived operator*(Derived a, double s) { return Derived{a.v * s}; }
  friend constexpr Derived operator*(double s, Derived a) { return Derived{a.v * s}; }
  friend constexpr Derived operator/(Derived a, double s) { return Derived{a.v / s}; }
  /// Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(Derived a, Derived b) { return a.v / b.v; }

  constexpr Derived& operator+=(Derived o) {
    v += o.v;
    return static_cast<Derived&>(*this);
  }
  constexpr Derived& operator-=(Derived o) {
    v -= o.v;
    return static_cast<Derived&>(*this);
  }
  constexpr Derived& operator*=(double s) {
    v *= s;
    return static_cast<Derived&>(*this);
  }

  friend constexpr auto operator<=>(Derived a, Derived b) { return a.v <=> b.v; }
  friend constexpr bool operator==(Derived a, Derived b) { return a.v == b.v; }
};

}  // namespace detail

/// Electrical/optical power in watts.
struct Power : detail::QuantityBase<Power> {
  using QuantityBase::QuantityBase;
  [[nodiscard]] constexpr double watts() const { return v; }
  [[nodiscard]] constexpr double milliwatts() const { return v * 1e3; }
  [[nodiscard]] constexpr double microwatts() const { return v * 1e6; }
};

/// Energy in joules.
struct Energy : detail::QuantityBase<Energy> {
  using QuantityBase::QuantityBase;
  [[nodiscard]] constexpr double joules() const { return v; }
  [[nodiscard]] constexpr double millijoules() const { return v * 1e3; }
  [[nodiscard]] constexpr double microjoules() const { return v * 1e6; }
  [[nodiscard]] constexpr double picojoules() const { return v * 1e12; }
};

/// Time in seconds.
struct Time : detail::QuantityBase<Time> {
  using QuantityBase::QuantityBase;
  [[nodiscard]] constexpr double seconds() const { return v; }
  [[nodiscard]] constexpr double milliseconds() const { return v * 1e3; }
  [[nodiscard]] constexpr double nanoseconds() const { return v * 1e9; }
};

/// Rate in hertz.
struct Frequency : detail::QuantityBase<Frequency> {
  using QuantityBase::QuantityBase;
  [[nodiscard]] constexpr double hertz() const { return v; }
  [[nodiscard]] constexpr double gigahertz() const { return v * 1e-9; }
};

// --- cross-dimension arithmetic ------------------------------------------
constexpr Energy operator*(Power p, Time t) { return Energy{p.value() * t.value()}; }
constexpr Energy operator*(Time t, Power p) { return p * t; }
constexpr Power operator/(Energy e, Time t) { return Power{e.value() / t.value()}; }
constexpr Time operator/(Energy e, Power p) { return Time{e.value() / p.value()}; }
constexpr Power operator*(Energy e, Frequency f) { return Power{e.value() * f.value()}; }
constexpr Power operator*(Frequency f, Energy e) { return e * f; }
constexpr Energy operator/(Power p, Frequency f) { return Energy{p.value() / f.value()}; }
constexpr Time period(Frequency f) { return Time{1.0 / f.value()}; }

// --- constructor helpers ---------------------------------------------------
constexpr Power watts(double x) { return Power{x}; }
constexpr Power milliwatts(double x) { return Power{x * 1e-3}; }
constexpr Power microwatts(double x) { return Power{x * 1e-6}; }
constexpr Energy joules(double x) { return Energy{x}; }
constexpr Energy millijoules(double x) { return Energy{x * 1e-3}; }
constexpr Energy microjoules(double x) { return Energy{x * 1e-6}; }
constexpr Energy nanojoules(double x) { return Energy{x * 1e-9}; }
constexpr Energy picojoules(double x) { return Energy{x * 1e-12}; }
constexpr Energy femtojoules(double x) { return Energy{x * 1e-15}; }
constexpr Time seconds(double x) { return Time{x}; }
constexpr Time nanoseconds(double x) { return Time{x * 1e-9}; }
constexpr Frequency hertz(double x) { return Frequency{x}; }
constexpr Frequency gigahertz(double x) { return Frequency{x * 1e9}; }
constexpr Frequency megahertz(double x) { return Frequency{x * 1e6}; }

inline std::ostream& operator<<(std::ostream& os, Power p) { return os << p.watts() << " W"; }
inline std::ostream& operator<<(std::ostream& os, Energy e) { return os << e.joules() << " J"; }
inline std::ostream& operator<<(std::ostream& os, Time t) { return os << t.seconds() << " s"; }
inline std::ostream& operator<<(std::ostream& os, Frequency f) { return os << f.hertz() << " Hz"; }

}  // namespace pdac::units
