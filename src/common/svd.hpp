// svd.hpp — singular value decomposition for small dense matrices.
//
// The MZI-array baseline (paper §II: Shen et al.'s coherent mesh) maps a
// weight matrix W as U·Σ·Vᵀ — two unitary meshes around a diagonal
// attenuator column — so reproducing that baseline needs an SVD.  This
// is a one-sided Jacobi implementation: numerically robust for the
// small (≤ a few hundred) matrices photonic meshes can realize, with no
// external dependency.
#pragma once

#include "common/matrix.hpp"

namespace pdac::math {

struct SvdResult {
  Matrix u;                      ///< m×n, orthonormal columns
  std::vector<double> singular;  ///< n values, non-increasing
  Matrix v;                      ///< n×n orthogonal

  /// Reconstruct U·Σ·Vᵀ (testing / residual checks).
  [[nodiscard]] Matrix reconstruct() const;
};

/// One-sided Jacobi SVD of an m×n matrix with m ≥ n.
/// Sweeps column-pair rotations until all pairs are orthogonal to
/// `tol` relative accuracy.
SvdResult svd(const Matrix& a, double tol = 1e-12, int max_sweeps = 60);

}  // namespace pdac::math
