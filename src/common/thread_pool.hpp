// thread_pool.hpp — a small reusable worker pool for tile-parallel
// simulation (ptc/tile_scheduler.hpp is the primary client).
//
// The pool exposes exactly one primitive, parallel_for: a *static*,
// deterministic partition of [0, n) into at most size() contiguous
// ranges, one per participating worker.  Static partitioning (rather
// than work stealing) is deliberate: every index lands on a fixed
// worker for a given (n, size()) pair, so callers can hand each worker
// its own device state and per-index output slots and get bit-identical
// results at any thread count.  The calling thread participates as
// worker 0, so a pool of size 1 runs everything inline with zero
// synchronization.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pdac {

class ThreadPool {
 public:
  /// Body of one parallel_for partition: half-open index range
  /// [begin, end) plus the worker slot that runs it (0 = caller).
  using RangeBody = std::function<void(std::size_t begin, std::size_t end, std::size_t worker)>;

  /// threads = total workers including the caller; 0 means
  /// default_threads().  A pool of size 1 spawns no threads at all.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total worker count, caller included.
  [[nodiscard]] std::size_t size() const { return workers_.size() + 1; }

  /// Run `body` over [0, n) split into min(size(), n) contiguous ranges.
  /// Blocks until every range finished; the first exception thrown by any
  /// range is rethrown here after all workers drained.  Not reentrant:
  /// one parallel_for at a time per pool, and a body that calls
  /// parallel_for again — on this pool or any other — throws
  /// std::logic_error instead of deadlocking or oversubscribing.
  void parallel_for(std::size_t n, const RangeBody& body);

  /// Pool width used for threads == 0: the PDAC_GEMM_THREADS environment
  /// variable when set to a positive integer, else hardware concurrency.
  [[nodiscard]] static std::size_t default_threads();

 private:
  void worker_loop(std::size_t worker);
  void run_range(const RangeBody& body, std::size_t n, std::size_t parts, std::size_t part);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const RangeBody* job_{nullptr};
  std::size_t job_n_{0};
  std::size_t job_parts_{0};
  std::size_t pending_{0};
  std::uint64_t epoch_{0};
  bool stop_{false};
  std::exception_ptr error_;
};

}  // namespace pdac
