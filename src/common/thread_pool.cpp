#include "common/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace pdac {

namespace {
// The pool currently running a parallel_for body on this thread.  A body
// that calls parallel_for again — on this pool or any other — would
// deadlock (this pool: the job slot is occupied) or silently oversubscribe
// (another pool: workers × workers threads); both are caller bugs the
// guard turns into an immediate, testable error.
thread_local const ThreadPool* t_active_pool = nullptr;

struct ActivePoolGuard {
  const ThreadPool* prev;
  explicit ActivePoolGuard(const ThreadPool* pool) : prev(t_active_pool) {
    t_active_pool = pool;
  }
  ~ActivePoolGuard() { t_active_pool = prev; }
};
}  // namespace

std::size_t ThreadPool::default_threads() {
  if (const char* env = std::getenv("PDAC_GEMM_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<std::size_t>(hw) : 1;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_threads();
  workers_.reserve(threads - 1);
  for (std::size_t w = 1; w < threads; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::run_range(const RangeBody& body, std::size_t n, std::size_t parts,
                           std::size_t part) {
  const std::size_t begin = part * n / parts;
  const std::size_t end = (part + 1) * n / parts;
  if (begin < end) body(begin, end, part);
}

void ThreadPool::worker_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    const RangeBody* body = nullptr;
    std::size_t n = 0;
    std::size_t parts = 0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      body = job_;
      n = job_n_;
      parts = job_parts_;
    }
    if (worker >= parts) continue;  // narrow job: this worker sat out
    try {
      ActivePoolGuard guard(this);
      run_range(*body, n, parts, worker);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!error_) error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n, const RangeBody& body) {
  if (t_active_pool != nullptr) {
    throw std::logic_error(
        "ThreadPool::parallel_for: nested call from inside a parallel_for body");
  }
  if (n == 0) return;
  const std::size_t parts = std::min(size(), n);
  if (parts <= 1) {
    ActivePoolGuard guard(this);
    body(0, n, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &body;
    job_n_ = n;
    job_parts_ = parts;
    pending_ = parts - 1;  // workers 1 … parts−1; the caller runs part 0
    ++epoch_;
  }
  cv_work_.notify_all();

  std::exception_ptr caller_error;
  try {
    ActivePoolGuard guard(this);
    run_range(body, n, parts, 0);
  } catch (...) {
    caller_error = std::current_exception();
  }

  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [&] { return pending_ == 0; });
  job_ = nullptr;
  std::exception_ptr worker_error = error_;
  error_ = nullptr;
  lk.unlock();
  if (caller_error) std::rethrow_exception(caller_error);
  if (worker_error) std::rethrow_exception(worker_error);
}

}  // namespace pdac
