// stats.hpp — streaming statistics and vector error metrics.
//
// Used by the accuracy experiments (P-DAC vs ideal-DAC encodings, photonic
// GEMM vs double-precision reference) and by the noise models' self-tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pdac::stats {

/// Welford streaming accumulator: numerically stable mean/variance plus
/// min/max, usable over arbitrarily long sweeps without storing samples.
class Running {
 public:
  void add(double x);
  void merge(const Running& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Population variance (n denominator); 0 for n < 2.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
};

/// Error metrics between a measured vector and a reference vector.
struct VectorError {
  double rmse{};          ///< root mean squared error
  double max_abs{};       ///< worst absolute deviation
  double max_rel{};       ///< worst relative deviation (floored denominator)
  double rel_frobenius{}; ///< ||m - r||_2 / ||r||_2
  double cosine{};        ///< cosine similarity of the two vectors
};

/// Compute all metrics in one pass.  Spans must be the same length.
VectorError compare(std::span<const double> measured, std::span<const double> reference,
                    double rel_floor = 1e-9);

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins so totals always match the sample count.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double bin_center(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_{0};
};

}  // namespace pdac::stats
