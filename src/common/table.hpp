// table.hpp — aligned ASCII tables for the evaluation harness.
//
// Every bench binary prints the paper's figure as a table with `paper`
// and `measured` columns; this tiny formatter keeps all of them readable
// and consistent without dragging in a formatting library.
#pragma once

#include <string>
#include <vector>

namespace pdac {

/// Builds an aligned, pipe-separated text table.  Cells are strings; use
/// Table::num/pct/watts helpers for consistent numeric formatting.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Insert a horizontal rule before the next row.
  void add_rule();

  [[nodiscard]] std::string to_string() const;

  // Formatting helpers shared by the benches.
  static std::string num(double v, int precision = 3);
  static std::string pct(double fraction, int precision = 1);   ///< 0.218 -> "21.8%"
  static std::string watts(double w, int precision = 2);        ///< 11.81 -> "11.81 W"
  static std::string millijoules(double j, int precision = 3);  ///< J -> "x.xxx mJ"

 private:
  std::vector<std::string> header_;
  // A row with the single sentinel cell "\x01rule" renders as a rule.
  std::vector<std::vector<std::string>> rows_;
};

/// Render a fraction as a fixed-width ASCII bar, e.g. share=0.5, width=20
/// -> "##########          ".  Used for power-breakdown "pie" rendering.
std::string ascii_bar(double share, std::size_t width = 32);

}  // namespace pdac
