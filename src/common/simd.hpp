// simd.hpp — feature-detected SIMD dot-product primitives for the fused
// kernel's fast tier (DESIGN.md §13).
//
// The fused kernel's scalar tier is bit-exact against the device graph
// and therefore pinned to its exact floating-point operation sequence —
// one serial accumulation chain per rail, no reassociation.  The fast
// tier (ptc::ExecutionPath::kKernelSimd) trades that pin for speed: it
// reduces with explicit 4/8-wide blocking, which reassociates the sums
// into independent partial accumulators.  These primitives are that
// blocking, kept in one place so the reassociation policy is uniform:
//
//   * on x86-64 with AVX2+FMA (detected at runtime, compiled via
//     per-function target attributes so the base build stays portable):
//     two 4-wide fused-multiply-add chains, horizontally folded as
//     (l0+l1)+(l2+l3) after the main loop, scalar tail;
//   * everywhere else: an explicitly 4-way-unrolled scalar loop with
//     four independent partial sums — the shape autovectorizers take at
//     -O2/-O3 with baseline SSE2/NEON — folded the same way.
//
// Either way the result differs from the single-chain reference only by
// floating-point reassociation (and FMA's skipped intermediate
// roundings), i.e. by O(ε·n·|x|·|y|) — exactly the error family the
// ABFT guard band (ptc::guard_tolerance) is calibrated to absorb.  The
// dispatch is deterministic per machine: identical inputs give identical
// bits run-to-run; only cross-ISA runs may differ, and only in-band.
// The integer tier (ptc::ExecutionPath::kKernelQuant, DESIGN.md §15) has
// a stronger contract than the double tier: its dot products are EXACT
// sums over ℤ — integer addition is associative, so the AVX2 and
// portable paths return identical bits on every machine, not merely
// in-band.  The AVX2 path accumulates int16×int16 pairs with madd_epi16
// into int32 lanes and drains them into int64 lanes before they can
// overflow; the drain cadence is derived from the caller-supplied
// max_abs bound (one madd lane adds ≤ 2·max_abs², so
// ⌊(2³¹−1)/(2·max_abs²)⌋ iterations are provably safe).
#pragma once

#include <cstddef>
#include <cstdint>

namespace pdac::simd {

/// Name of the instruction set the primitives dispatch to on this
/// machine ("avx2+fma" or "portable") — for bench/report provenance.
[[nodiscard]] const char* active_isa();

/// True when the AVX2+FMA path is live (x86 with runtime support).
[[nodiscard]] bool has_fast_path();

/// Blocked dot product Σ_p x[p]·y[p] (reassociated; see header).
[[nodiscard]] double dot(const double* x, const double* y, std::size_t n);

/// Blocked Σ_p x[p]² — the quadratic-form row/column terms.
[[nodiscard]] double dot_self(const double* x, std::size_t n);

/// Four dots sharing one x row: out[b] = Σ_p x[p]·y[b][p].  One load of
/// x feeds all four columns, the fast tier's tile-blocking shape.
void dot4(const double* x, const double* const y[4], std::size_t n, double out[4]);

/// Exact integer dot Σ_p x[p]·y[p] over int16 codes.  `max_abs` bounds
/// |x[p]| and |y[p]| (≥ 1, ≤ 32767 — the quantizer's max_code) and sets
/// the overflow-safe drain cadence; the result is the mathematical sum,
/// identical bits on every ISA.
[[nodiscard]] std::int64_t dot_i16(const std::int16_t* x, const std::int16_t* y,
                                   std::size_t n, std::int32_t max_abs);

/// Exact Σ_p x[p]² over int16 codes (quadratic-form row/column terms).
[[nodiscard]] std::int64_t dot_self_i16(const std::int16_t* x, std::size_t n,
                                        std::int32_t max_abs);

/// Four exact integer dots sharing one x row (tile-blocking shape).
void dot4_i16(const std::int16_t* x, const std::int16_t* const y[4], std::size_t n,
              std::int32_t max_abs, std::int64_t out[4]);

}  // namespace pdac::simd
