// matrix.hpp — minimal row-major dense matrix shared by the photonic
// tensor core and the transformer stack.  Header-only, value-semantic;
// this repository's models are small enough that clarity beats BLAS.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace pdac {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    PDAC_REQUIRE(data_.size() == rows_ * cols_, "Matrix: data size mismatch");
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    PDAC_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double& operator()(std::size_t r, std::size_t c) {
    PDAC_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    PDAC_REQUIRE(r < rows_, "Matrix: row out of range");
    return {data_.data() + r * cols_, cols_};
  }
  std::span<double> row(std::size_t r) {
    PDAC_REQUIRE(r < rows_, "Matrix: row out of range");
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::vector<double> col(std::size_t c) const {
    PDAC_REQUIRE(c < cols_, "Matrix: column out of range");
    std::vector<double> out(rows_);
    for (std::size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
    return out;
  }

  [[nodiscard]] const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Reshape in place, reusing the existing allocation when it is large
  /// enough (the GEMM engine's per-call scratch buffers rely on this to
  /// stay allocation-free across products).  Element values after a
  /// shape change are unspecified — callers must overwrite them.
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  [[nodiscard]] Matrix transposed() const {
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
    }
    return t;
  }

  /// Seeded Gaussian-filled matrix (synthetic weights/activations).
  static Matrix random_gaussian(std::size_t rows, std::size_t cols, Rng& rng,
                                double mean = 0.0, double stddev = 1.0) {
    Matrix m(rows, cols);
    for (auto& x : m.data_) x = rng.gaussian(mean, stddev);
    return m;
  }

  static Matrix random_uniform(std::size_t rows, std::size_t cols, Rng& rng, double lo,
                               double hi) {
    Matrix m(rows, cols);
    for (auto& x : m.data_) x = rng.uniform(lo, hi);
    return m;
  }

 private:
  std::size_t rows_{0};
  std::size_t cols_{0};
  std::vector<double> data_;
};

/// Row-major matrix of int16 quantizer codes — the operand form of the
/// fused kernel's integer tier (DESIGN.md §15).  Each entry is a
/// converters::Quantizer code whose decode() is the encoded amplitude the
/// double path would have streamed; carrying the code instead of the
/// double quarters the bytes moved per reduction element.  int16 covers
/// every supported width (Quantizer bits ≤ 16 ⇒ |code| ≤ 32767).
class CodeMatrix {
 public:
  CodeMatrix() = default;
  CodeMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] std::span<const std::int16_t> row(std::size_t r) const {
    PDAC_REQUIRE(r < rows_, "CodeMatrix: row out of range");
    return {data_.data() + r * cols_, cols_};
  }
  std::span<std::int16_t> row(std::size_t r) {
    PDAC_REQUIRE(r < rows_, "CodeMatrix: row out of range");
    return {data_.data() + r * cols_, cols_};
  }

  /// Same reuse contract as Matrix::resize (values unspecified after).
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }
  void clear() {
    rows_ = cols_ = 0;
    data_.clear();
  }

  [[nodiscard]] const std::vector<std::int16_t>& data() const { return data_; }
  std::vector<std::int16_t>& data() { return data_; }

 private:
  std::size_t rows_{0};
  std::size_t cols_{0};
  std::vector<std::int16_t> data_;
};

/// Double-precision reference product (ground truth for the photonic GEMM).
inline Matrix matmul_reference(const Matrix& a, const Matrix& b) {
  PDAC_REQUIRE(a.cols() == b.rows(), "matmul: inner dimensions must agree");
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

}  // namespace pdac
