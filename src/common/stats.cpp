#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/math_utils.hpp"
#include "common/require.hpp"

namespace pdac::stats {

void Running::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Running::merge(const Running& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double Running::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double Running::stddev() const { return std::sqrt(variance()); }

VectorError compare(std::span<const double> measured, std::span<const double> reference,
                    double rel_floor) {
  PDAC_REQUIRE(measured.size() == reference.size(), "compare: length mismatch");
  PDAC_REQUIRE(!measured.empty(), "compare: empty input");
  VectorError e;
  double sq_err = 0.0, sq_ref = 0.0, dot = 0.0, sq_meas = 0.0;
  for (std::size_t i = 0; i < measured.size(); ++i) {
    const double d = measured[i] - reference[i];
    sq_err += d * d;
    sq_ref += reference[i] * reference[i];
    sq_meas += measured[i] * measured[i];
    dot += measured[i] * reference[i];
    e.max_abs = std::max(e.max_abs, std::abs(d));
    e.max_rel = std::max(e.max_rel, math::relative_error(measured[i], reference[i], rel_floor));
  }
  const double n = static_cast<double>(measured.size());
  e.rmse = std::sqrt(sq_err / n);
  e.rel_frobenius = sq_ref > 0.0 ? std::sqrt(sq_err / sq_ref) : std::sqrt(sq_err);
  const double norm = std::sqrt(sq_meas) * std::sqrt(sq_ref);
  e.cosine = norm > 0.0 ? dot / norm : 1.0;
  return e;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
  PDAC_REQUIRE(hi > lo, "Histogram: hi must exceed lo");
  PDAC_REQUIRE(bins >= 1, "Histogram: at least one bin");
}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  auto idx = static_cast<long>(std::floor((x - lo_) / span * static_cast<double>(counts_.size())));
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_center(std::size_t bin) const {
  PDAC_REQUIRE(bin < counts_.size(), "Histogram: bin out of range");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

}  // namespace pdac::stats
