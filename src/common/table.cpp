#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/require.hpp"

namespace pdac {

namespace {
constexpr const char* kRuleSentinel = "\x01rule";
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  PDAC_REQUIRE(!header_.empty(), "Table: header must be non-empty");
}

void Table::add_row(std::vector<std::string> cells) {
  PDAC_REQUIRE(cells.size() == header_.size(), "Table: row width must match header");
  rows_.push_back(std::move(cells));
}

void Table::add_rule() { rows_.push_back({kRuleSentinel}); }

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kRuleSentinel) continue;
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  auto emit_rule = [&](std::ostringstream& os) {
    os << '+';
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << std::string(width[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  auto emit_row = [&](std::ostringstream& os, const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(width[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };

  std::ostringstream os;
  emit_rule(os);
  emit_row(os, header_);
  emit_rule(os);
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kRuleSentinel) {
      emit_rule(os);
    } else {
      emit_row(os, row);
    }
  }
  emit_rule(os);
  return os.str();
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::pct(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

std::string Table::watts(double w, int precision) { return num(w, precision) + " W"; }

std::string Table::millijoules(double j, int precision) {
  return num(j * 1e3, precision) + " mJ";
}

std::string ascii_bar(double share, std::size_t width) {
  share = std::clamp(share, 0.0, 1.0);
  const auto filled = static_cast<std::size_t>(std::lround(share * static_cast<double>(width)));
  return std::string(filled, '#') + std::string(width - filled, ' ');
}

}  // namespace pdac
