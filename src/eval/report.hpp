// report.hpp — shared rendering for the per-figure bench binaries.
//
// Every bench prints (a) the reproduced figure as an aligned table and
// (b) a paper-vs-measured scoreboard so EXPERIMENTS.md can be filled in
// directly from bench output.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arch/component_power.hpp"
#include "arch/energy_model.hpp"

namespace pdac::eval {

/// Render a Fig. 5 / Fig. 11 style component breakdown with ASCII bars.
std::string render_power_breakdown(const std::string& title,
                                   const arch::PowerBreakdown& breakdown);

/// Render a Fig. 9 / Fig. 10 style per-class energy table for a
/// baseline/P-DAC pair.
std::string render_energy_comparison(const std::string& title,
                                     const arch::EnergyComparison& cmp);

/// One paper-vs-measured scoreboard line.
struct Scored {
  std::string metric;
  double paper;     ///< value the paper reports
  double measured;  ///< value this reproduction computes
  std::string unit; ///< "%", "W", …
};

/// Render the scoreboard; `tolerance_note` is appended as a footer.
std::string render_scoreboard(const std::string& title, const std::vector<Scored>& rows,
                              const std::string& tolerance_note = {});

/// Simple CSV emission (one row per line) for downstream plotting.
std::string to_csv(const std::vector<std::string>& header,
                   const std::vector<std::vector<double>>& rows);

/// One operating point of the fault-tolerance ablation
/// (bench/abl_fault_tolerance): plain data so eval stays independent of
/// the faults library.
struct FaultRateRow {
  double fault_rate{};         ///< per-lane hard-fault probability
  std::size_t lanes_dead{};    ///< fenced by the self-test
  std::size_t lanes_recovered{};
  double throughput_scale{};   ///< degraded vs healthy effective throughput
  double cosine_accuracy{};    ///< encoder-layer output vs fp64 reference
  double recal_energy_uj{};    ///< detection + recovery + remap energy [µJ]
  /// Mean tiles scanned before corruption surfaced (ABFT guard;
  /// negative = not measured for this mode, column renders as "-").
  double detect_latency_tiles{-1.0};
};

/// Render the accuracy-vs-fault-rate table for one detection/recovery
/// mode, with an ASCII bar over the cosine accuracy column.
std::string render_fault_tolerance(const std::string& title,
                                   const std::vector<FaultRateRow>& rows);

/// Weight-stationary operand-cache counters (bench/perf_weight_cache,
/// DESIGN.md §10): plain data so eval stays independent of the nn
/// library — copy the fields out of nn::OperandCacheStats.
struct OperandCacheSummary {
  std::uint64_t hits{};
  std::uint64_t misses{};
  std::uint64_t evictions{};
  std::uint64_t invalidations{};
  std::uint64_t oversized_rejects{};
  std::uint64_t resident_bytes{};
  std::uint64_t capacity_bytes{};
  std::uint64_t entries{};
};

/// Render the cache scoreboard (hit rate bar, occupancy, churn).
std::string render_operand_cache(const std::string& title, const OperandCacheSummary& s);

/// ABFT guard health rollup (bench/abl_abft_overhead, DESIGN.md §12):
/// plain data so eval stays independent of the faults library — copy the
/// fields out of faults::HealthSnapshot / nn::GuardStats and price the
/// event counters with arch::event_energy.
struct AbftGuardSummary {
  std::size_t products{};
  std::size_t tiles_checked{};
  std::size_t mismatched_tiles{};
  std::size_t detections{};        ///< products with ≥ 1 mismatched tile
  std::size_t retries{};
  std::size_t retrims{};
  std::size_t fences{};
  std::size_t unrecovered{};
  /// Drift-hysteresis policy state (DESIGN.md §16): absorbed in-band
  /// tiles, the split of re-trims fired proactively by the drift
  /// tracker, and re-trims the windowed governor refused.
  std::size_t drift_tiles{};
  std::size_t proactive_retrims{};
  std::size_t governed_retrims{};
  double worst_drift_ratio{};
  double mean_detection_latency{}; ///< tiles scanned before first mismatch
  double worst_residual{};
  double worst_tolerance{};
  double checksum_energy_uj{};     ///< spare checksum-lane charge [µJ]
  double retry_energy_uj{};        ///< recovery re-run charge [µJ]
  double data_energy_uj{};         ///< data-path charge, for overhead % [µJ]
};

/// Render the guard scoreboard: verification volume, mismatch rate bar,
/// recovery-ladder counts and the energy overhead split.
std::string render_abft_guard(const std::string& title, const AbftGuardSummary& s);

/// One backend of the serving pool (bench/perf_serving, DESIGN.md §14):
/// plain data so eval stays independent of the serve library.
struct ServingBackendRow {
  std::size_t tokens{};
  std::size_t products{};
  double utilization{};     ///< busy cycles / makespan
  double final_health{};    ///< guard-aware placement score at the end
  bool alive{true};
  bool quarantined{false};  ///< still in probation at run end
  std::size_t fences{};
  std::size_t unrecovered{};
  std::size_t drifting_lanes{};   ///< drift tracker: in-band wander
  std::size_t excursion_lanes{};  ///< drift tracker: re-trim warranted
};

/// Continuous-batching serving rollup: verdict accounting, latency
/// percentiles, goodput and its energy price.
struct ServingSummary {
  std::size_t requests{};
  std::size_t completed{};
  std::size_t shed{};
  std::size_t failed{};
  std::size_t tokens{};            ///< all tokens emitted
  std::size_t goodput_tokens{};    ///< tokens of completed requests
  std::uint64_t makespan_cycles{};
  double p50_token_gap{};          ///< inter-token latency [cycles]
  double p99_token_gap{};
  double p50_request_latency{};    ///< arrival → completion [cycles]
  double p99_request_latency{};
  double energy_uj{};              ///< pool total (data + guard + recovery)
  double goodput_per_joule{};      ///< completed tokens per joule
  std::size_t throttled_products{};///< run with a clamped re-trim ladder
  /// Quarantine/readmission activity (BackendPool, DESIGN.md §16).
  std::size_t quarantines{};
  std::size_t readmissions{};
  std::size_t canary_probes{};
  std::vector<ServingBackendRow> backends;
};

/// Render the serving scoreboard: verdict reconciliation, latency
/// percentiles, goodput-per-joule, and the per-backend placement split.
std::string render_serving(const std::string& title, const ServingSummary& s);

}  // namespace pdac::eval
