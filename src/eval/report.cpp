#include "eval/report.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/table.hpp"

namespace pdac::eval {

std::string render_power_breakdown(const std::string& title,
                                   const arch::PowerBreakdown& breakdown) {
  Table t({"component", "power", "share", ""});
  const double total = breakdown.total().watts();
  for (const auto& part : breakdown.parts) {
    const double share = total > 0.0 ? part.power.watts() / total : 0.0;
    t.add_row({arch::to_string(part.component), Table::watts(part.power.watts()),
               Table::pct(share), ascii_bar(share, 24)});
  }
  t.add_rule();
  t.add_row({"total", Table::watts(total), Table::pct(1.0), ascii_bar(1.0, 24)});

  std::ostringstream os;
  os << "== " << title << " (" << arch::to_string(breakdown.variant) << ", "
     << breakdown.bits << "-bit) ==\n"
     << t.to_string();
  return os.str();
}

namespace {

void add_energy_rows(Table& t, const std::string& label, const arch::EnergyBreakdown& base,
                     const arch::EnergyBreakdown& pdac) {
  const double b = base.total().joules();
  const double p = pdac.total().joules();
  const double saving = b > 0.0 ? 1.0 - p / b : 0.0;
  t.add_row({label, Table::millijoules(b), Table::millijoules(p), Table::pct(saving)});
}

}  // namespace

std::string render_energy_comparison(const std::string& title,
                                     const arch::EnergyComparison& cmp) {
  Table t({"operation", "DAC-based", "P-DAC", "energy saving"});
  add_energy_rows(t, "attention", cmp.baseline.attention, cmp.pdac.attention);
  add_energy_rows(t, "ffn", cmp.baseline.ffn, cmp.pdac.ffn);
  if (cmp.baseline.conv.total().joules() > 0.0) {
    add_energy_rows(t, "conv", cmp.baseline.conv, cmp.pdac.conv);
  }
  add_energy_rows(t, "other", cmp.baseline.other, cmp.pdac.other);
  t.add_rule();
  add_energy_rows(t, "total", cmp.baseline.total(), cmp.pdac.total());

  Table parts({"term", "DAC-based", "P-DAC"});
  const auto& b = cmp.baseline;
  const auto& p = cmp.pdac;
  auto row = [&parts](const std::string& name, units::Energy eb, units::Energy ep) {
    parts.add_row({name, Table::millijoules(eb.joules()), Table::millijoules(ep.joules())});
  };
  row("modulation (DAC/ctrl vs P-DAC)", b.total().modulation, p.total().modulation);
  row("ADC readout", b.total().adc, p.total().adc);
  row("laser+thermal+receivers", b.total().static_power, p.total().static_power);
  row("SRAM data movement", b.total().movement, p.total().movement);
  row("digital vector unit", b.total().vector_unit, p.total().vector_unit);

  std::ostringstream os;
  os << "== " << title << " (" << cmp.baseline.bits << "-bit) ==\n"
     << t.to_string() << "per-term breakdown:\n"
     << parts.to_string();
  return os.str();
}

std::string render_scoreboard(const std::string& title, const std::vector<Scored>& rows,
                              const std::string& tolerance_note) {
  Table t({"metric", "paper", "measured", "delta"});
  for (const auto& r : rows) {
    const double delta = r.measured - r.paper;
    t.add_row({r.metric, Table::num(r.paper, 2) + r.unit, Table::num(r.measured, 2) + r.unit,
               (delta >= 0 ? "+" : "") + Table::num(delta, 2) + r.unit});
  }
  std::ostringstream os;
  os << "-- paper vs measured: " << title << " --\n" << t.to_string();
  if (!tolerance_note.empty()) os << tolerance_note << "\n";
  return os.str();
}

std::string render_fault_tolerance(const std::string& title,
                                   const std::vector<FaultRateRow>& rows) {
  Table t({"fault rate", "dead", "recovered", "throughput", "cosine", "", "recal energy",
           "detect lat"});
  for (const auto& r : rows) {
    t.add_row({Table::pct(r.fault_rate), std::to_string(r.lanes_dead),
               std::to_string(r.lanes_recovered), Table::pct(r.throughput_scale),
               Table::num(r.cosine_accuracy, 4),
               ascii_bar(std::max(0.0, r.cosine_accuracy), 24),
               Table::num(r.recal_energy_uj, 3) + " uJ",
               r.detect_latency_tiles < 0.0 ? "-"
                                            : Table::num(r.detect_latency_tiles, 1) + " tiles"});
  }
  std::ostringstream os;
  os << "== " << title << " ==\n" << t.to_string();
  return os.str();
}

std::string render_operand_cache(const std::string& title, const OperandCacheSummary& s) {
  const std::uint64_t lookups = s.hits + s.misses;
  const double hit_rate =
      lookups > 0 ? static_cast<double>(s.hits) / static_cast<double>(lookups) : 0.0;
  const double occupancy = s.capacity_bytes > 0
                               ? static_cast<double>(s.resident_bytes) /
                                     static_cast<double>(s.capacity_bytes)
                               : 0.0;
  Table t({"counter", "value", ""});
  t.add_row({"lookups", std::to_string(lookups), ""});
  t.add_row({"hit rate", Table::pct(hit_rate), ascii_bar(hit_rate, 24)});
  t.add_row({"misses", std::to_string(s.misses), ""});
  t.add_row({"invalidations", std::to_string(s.invalidations), ""});
  t.add_row({"evictions", std::to_string(s.evictions), ""});
  t.add_row({"oversized rejects", std::to_string(s.oversized_rejects), ""});
  t.add_row({"entries", std::to_string(s.entries), ""});
  t.add_row({"resident", Table::num(static_cast<double>(s.resident_bytes) / (1024.0 * 1024.0), 1) +
                             " MiB / " +
                             Table::num(static_cast<double>(s.capacity_bytes) / (1024.0 * 1024.0), 1) +
                             " MiB",
             ascii_bar(std::min(occupancy, 1.0), 24)});
  std::ostringstream os;
  os << "== " << title << " ==\n" << t.to_string();
  return os.str();
}

std::string render_abft_guard(const std::string& title, const AbftGuardSummary& s) {
  const double mismatch_rate =
      s.tiles_checked > 0
          ? static_cast<double>(s.mismatched_tiles) / static_cast<double>(s.tiles_checked)
          : 0.0;
  const double guard_uj = s.checksum_energy_uj + s.retry_energy_uj;
  const double overhead =
      s.data_energy_uj > 0.0 ? guard_uj / s.data_energy_uj : 0.0;
  Table t({"counter", "value", ""});
  t.add_row({"products verified", std::to_string(s.products), ""});
  t.add_row({"tiles verified", std::to_string(s.tiles_checked), ""});
  t.add_row({"tile mismatch rate", Table::pct(mismatch_rate, 3),
             ascii_bar(std::min(mismatch_rate, 1.0), 24)});
  t.add_row({"detections (products)", std::to_string(s.detections), ""});
  t.add_row({"mean detect latency",
             s.detections > 0 ? Table::num(s.mean_detection_latency, 1) + " tiles" : "-", ""});
  t.add_row({"worst residual / band",
             Table::num(s.worst_residual, 3) + " / " + Table::num(s.worst_tolerance, 3), ""});
  t.add_rule();
  t.add_row({"retries", std::to_string(s.retries), ""});
  t.add_row({"re-trims (proactive)", std::to_string(s.retrims) + " (" +
                                         std::to_string(s.proactive_retrims) + ")",
             ""});
  t.add_row({"re-trims governed", std::to_string(s.governed_retrims), ""});
  t.add_row({"fences", std::to_string(s.fences), ""});
  t.add_row({"unrecovered", std::to_string(s.unrecovered), ""});
  t.add_row({"drift tiles absorbed", std::to_string(s.drift_tiles), ""});
  t.add_row({"worst drift ratio",
             s.drift_tiles > 0 ? Table::num(s.worst_drift_ratio, 2) + "x band" : "-", ""});
  t.add_rule();
  t.add_row({"checksum-lane energy", Table::num(s.checksum_energy_uj, 3) + " uJ", ""});
  t.add_row({"recovery re-run energy", Table::num(s.retry_energy_uj, 3) + " uJ", ""});
  t.add_row({"guard overhead vs data", Table::pct(overhead, 2),
             ascii_bar(std::min(overhead, 1.0), 24)});
  std::ostringstream os;
  os << "== " << title << " ==\n" << t.to_string();
  return os.str();
}

std::string render_serving(const std::string& title, const ServingSummary& s) {
  const auto share = [&](std::size_t part) {
    return s.requests > 0 ? static_cast<double>(part) / static_cast<double>(s.requests) : 0.0;
  };
  Table t({"counter", "value", ""});
  t.add_row({"requests", std::to_string(s.requests), ""});
  t.add_row({"completed", std::to_string(s.completed), ascii_bar(share(s.completed), 24)});
  t.add_row({"shed", std::to_string(s.shed), ascii_bar(share(s.shed), 24)});
  t.add_row({"failed", std::to_string(s.failed), ascii_bar(share(s.failed), 24)});
  t.add_row({"tokens (goodput)",
             std::to_string(s.tokens) + " (" + std::to_string(s.goodput_tokens) + ")", ""});
  t.add_row({"makespan", std::to_string(s.makespan_cycles) + " cyc", ""});
  t.add_rule();
  t.add_row({"token gap p50 / p99",
             Table::num(s.p50_token_gap, 1) + " / " + Table::num(s.p99_token_gap, 1) + " cyc",
             ""});
  t.add_row({"request latency p50 / p99",
             Table::num(s.p50_request_latency, 1) + " / " + Table::num(s.p99_request_latency, 1) +
                 " cyc",
             ""});
  t.add_row({"pool energy", Table::num(s.energy_uj, 3) + " uJ", ""});
  t.add_row({"goodput per joule", Table::num(s.goodput_per_joule, 1) + " tok/J", ""});
  t.add_row({"throttled products", std::to_string(s.throttled_products), ""});
  t.add_row({"quarantines / readmits",
             std::to_string(s.quarantines) + " / " + std::to_string(s.readmissions), ""});
  t.add_row({"canary probes", std::to_string(s.canary_probes), ""});
  std::ostringstream os;
  os << "== " << title << " ==\n" << t.to_string();
  if (!s.backends.empty()) {
    Table bt({"backend", "tokens", "products", "util", "health", "fences", "unrec", "drift",
              "state"});
    for (std::size_t i = 0; i < s.backends.size(); ++i) {
      const ServingBackendRow& row = s.backends[i];
      const std::string state = !row.alive        ? "offline"
                                : row.quarantined ? "quarantined"
                                                  : "alive";
      bt.add_row({"#" + std::to_string(i), std::to_string(row.tokens),
                  std::to_string(row.products), Table::pct(row.utilization),
                  Table::num(row.final_health, 3), std::to_string(row.fences),
                  std::to_string(row.unrecovered),
                  std::to_string(row.drifting_lanes) + "/" +
                      std::to_string(row.excursion_lanes),
                  state});
    }
    os << bt.to_string();
  }
  return os.str();
}

std::string to_csv(const std::vector<std::string>& header,
                   const std::vector<std::vector<double>>& rows) {
  std::ostringstream os;
  for (std::size_t i = 0; i < header.size(); ++i) {
    os << header[i] << (i + 1 < header.size() ? "," : "\n");
  }
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << row[i] << (i + 1 < row.size() ? "," : "\n");
    }
  }
  return os.str();
}

}  // namespace pdac::eval
